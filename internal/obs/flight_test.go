package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record("trk", "k", fmt.Sprintf("e%d", i), "")
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	// The tail must be the LAST events, oldest first, contiguous seqs.
	for i, e := range snap.Events {
		if want := fmt.Sprintf("e%d", 6+i); e.Name != want {
			t.Fatalf("event %d = %q, want %q", i, e.Name, want)
		}
		if i > 0 && e.Seq != snap.Events[i-1].Seq+1 {
			t.Fatalf("seqs not contiguous: %d after %d", e.Seq, snap.Events[i-1].Seq)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record("a", "k", "one", "d1")
	r.RecordDur("b", "task", "two", "", 5*time.Millisecond)
	r.RecordDur("b", "task", "neg", "", -time.Second) // clamps
	snap := r.Snapshot()
	if len(snap.Events) != 3 || snap.Dropped != 0 {
		t.Fatalf("got %d events dropped=%d, want 3/0", len(snap.Events), snap.Dropped)
	}
	if snap.Events[1].DurNanos != int64(5*time.Millisecond) {
		t.Fatalf("dur = %d", snap.Events[1].DurNanos)
	}
	if snap.Events[2].DurNanos != 0 {
		t.Fatalf("negative duration not clamped: %d", snap.Events[2].DurNanos)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("a", "b", "c", "d")
	r.Recordf("a", "b", "c", "%d", 1)
	r.RecordDur("a", "b", "c", "", time.Second)
	if r.Len() != 0 {
		t.Fatal("nil recorder Len != 0")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Events) != 0 {
		t.Fatal("nil recorder snapshot must be empty, not nil")
	}
}

func TestRecorderContextRoundTrip(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("RecorderFrom lost the recorder")
	}
	if RecorderFrom(context.Background()) != nil {
		t.Fatal("plain context should have no recorder")
	}
	if RecorderFrom(nil) != nil { //nolint - nil ctx is part of the contract
		t.Fatal("nil context should have no recorder")
	}
	if got := WithRecorder(context.Background(), nil); RecorderFrom(got) != nil {
		t.Fatal("WithRecorder(nil) must not store a nil recorder")
	}
}

func TestRecorderConcurrentWriters(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const g, per = 8, 100
	wg.Add(g)
	for i := 0; i < g; i++ {
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Record("trk", "k", fmt.Sprintf("g%d", i), "")
				_ = r.Snapshot() // racing reads must be safe too
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap.Events) != 64 {
		t.Fatalf("retained %d, want 64", len(snap.Events))
	}
	if snap.Dropped != g*per-64 {
		t.Fatalf("dropped = %d, want %d", snap.Dropped, g*per-64)
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Seq <= snap.Events[i-1].Seq {
			t.Fatalf("snapshot seqs not increasing at %d", i)
		}
	}
}

func TestPoolRecordsTaskEvents(t *testing.T) {
	r := New()
	rec := NewRecorder(32)
	ctx := WithRecorder(context.Background(), rec)
	p := r.Pool("experiments.cell")
	if err := p.ForEachCtx(ctx, 4, 2, func(int) {}); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("recorded %d task events, want 4", len(snap.Events))
	}
	for _, e := range snap.Events {
		if e.Kind != "task" {
			t.Fatalf("event kind = %q, want task", e.Kind)
		}
		if e.Track != "experiments.cell/w0" && e.Track != "experiments.cell/w1" {
			t.Fatalf("unexpected track %q", e.Track)
		}
	}
	// Without a recorder in the context the pool records nothing and
	// the histogram still fills - telemetry stays write-only.
	if err := p.ForEachCtx(context.Background(), 2, 1, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 4 {
		t.Fatal("recorder grew without being in the context")
	}
	if st := p.TaskHist.Stats(); st.Count != 6 {
		t.Fatalf("task histogram count = %d, want 6", st.Count)
	}
}
