package obs

import "time"

// The package clock. Every duration the observability layer measures
// goes through since(), which subtracts against the clock's current
// reading and clamps the result at zero: Go's time.Now carries a
// monotonic reading and time.Time.Sub prefers it, but times that have
// lost their monotonic component (deserialized, Round()ed, or produced
// by a test clock) fall back to wall-clock arithmetic, and a stepped
// wall clock can run backwards. A telemetry layer must never report a
// negative latency because NTP slewed the host mid-span.
//
// now is a seam, not configuration: tests swap it (setClock) to prove
// the clamp holds under a clock that steps backwards; production always
// runs on time.Now.
var now = time.Now

// since returns the elapsed time from t to the package clock's current
// reading, never negative.
func since(t time.Time) time.Duration {
	d := now().Sub(t)
	if d < 0 {
		return 0
	}
	return d
}

// Since is the exported form of the package's monotonic-safe duration
// measurement: elapsed time from t, clamped at zero. Instrumentation
// outside this package (e.g. internal/serve job latencies) uses it so a
// backwards-stepping wall clock cannot surface as a negative duration
// in any status payload or metric.
func Since(t time.Time) time.Duration { return since(t) }

// ClampDuration returns d, or zero when d is negative - the guard every
// recording path applies before folding a duration into a metric.
func ClampDuration(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// setClock swaps the package clock and returns a restore function
// (tests only; callers must restore before the test ends).
func setClock(fn func() time.Time) (restore func()) {
	prev := now
	now = fn
	return func() { now = prev }
}
