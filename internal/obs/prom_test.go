package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.flops.simulated":           "sim_flops_simulated",
		"serve.jobs.queue_wait_seconds": "serve_jobs_queue_wait_seconds",
		"a-b.c/d":                       "a_b_c_d",
		"9lives":                        "_lives", // leading digit is illegal
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !promNameOK(PromName(in)) {
			t.Errorf("PromName(%q) produced illegal name %q", in, PromName(in))
		}
	}
}

// populated builds a registry exercising every metric kind.
func populated() *Registry {
	r := New()
	r.Counter("sim.flops.simulated").Add(42)
	r.Gauge("serve.jobs.running").Set(3)
	r.Timer("experiments.matrix.fetch_seconds").Observe(30 * time.Millisecond)
	r.Sample("mem.mc0.slowdown").Observe(1.5)
	h := r.Histogram("serve.jobs.exec_seconds")
	h.Observe(0.001)
	h.Observe(0.1)
	h.Observe(5)
	return r
}

func TestPrometheusWriteAndLintRoundTrip(t *testing.T) {
	r := populated()
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	out := string(text)
	for _, want := range []string{
		"# TYPE sim_flops_simulated_total counter",
		"sim_flops_simulated_total 42",
		"# TYPE serve_jobs_running gauge",
		"serve_jobs_running 3",
		"# TYPE experiments_matrix_fetch_seconds summary",
		"experiments_matrix_fetch_seconds_count 1",
		"# TYPE serve_jobs_exec_seconds histogram",
		`serve_jobs_exec_seconds_bucket{le="+Inf"} 3`,
		"serve_jobs_exec_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := LintPrometheus(text, nil); err != nil {
		t.Fatalf("lint rejected our own exposition: %v", err)
	}
	// Histogram buckets must be cumulative: the +Inf value is the max.
	if err := LintPrometheus(text, func(fam string) bool { return true }); err != nil {
		t.Fatalf("lint with permissive known set: %v", err)
	}
}

func TestLintPrometheusKnownSet(t *testing.T) {
	text, err := populated().PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	err = LintPrometheus(text, func(fam string) bool {
		return fam != "serve_jobs_running"
	})
	if err == nil || !strings.Contains(err.Error(), "serve_jobs_running") {
		t.Fatalf("lint should reject unknown family, got %v", err)
	}
}

func TestLintPrometheusCatchesCorruption(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "foo_total 3\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"descending le": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
		"inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"bad value":    "# TYPE g gauge\ng banana\n",
		"illegal name": "# TYPE g gauge\ng 1\n9bad 2\n",
	}
	for name, text := range cases {
		if err := LintPrometheus([]byte(text), nil); err == nil {
			t.Errorf("%s: lint accepted corrupt exposition:\n%s", name, text)
		}
	}
	// A well-formed hand-written exposition passes.
	good := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"
	if err := LintPrometheus([]byte(good), nil); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

func TestWritePrometheusCoversWholeSnapshot(t *testing.T) {
	// Every registry name must surface as at least one family.
	r := populated()
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	d := r.Snapshot()
	var names []string
	for n := range d.Counters {
		names = append(names, PromName(n)+"_total")
	}
	for n := range d.Gauges {
		names = append(names, PromName(n))
	}
	for n := range d.Timers {
		names = append(names, PromName(n)+"_sum")
	}
	for n := range d.Samples {
		names = append(names, PromName(n)+"_sum")
	}
	for n := range d.Histograms {
		names = append(names, PromName(n)+"_bucket")
	}
	for _, n := range names {
		if !strings.Contains(string(text), n) {
			t.Errorf("exposition missing %s", n)
		}
	}
}
