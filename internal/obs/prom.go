package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), standard library
// only. The registry's flat dotted namespace maps onto Prometheus
// families by mangling every non-[a-zA-Z0-9_] rune to '_':
//
//	counters    <name>_total                      counter
//	gauges      <name>                            gauge
//	timers /    <name>_sum, <name>_count          summary
//	samples     <name>_min, <name>_max            gauge (separate families)
//	histograms  <name>_bucket{le="..."}, _sum,
//	            _count                            histogram (cumulative)
//
// Families are emitted sorted, so the output is diff-stable and a
// scrape is byte-reproducible for a fixed registry state.

// PromContentType is the Content-Type a /metrics handler must serve.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName mangles a dotted registry name into a legal Prometheus
// metric name. The mapping is shared with cmd/metricscheck, which
// builds its known-family set by mangling the JSON snapshot's names.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value; Prometheus accepts Go's shortest
// round-trip float form plus +Inf/-Inf/NaN (which sanitize removes).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus snapshots the registry and writes the exposition.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusSnapshot(w, sanitize(r.Snapshot()))
}

// PrometheusText renders the registry's exposition as bytes.
func (r *Registry) PrometheusText() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WritePrometheusSnapshot writes d in Prometheus text format. The
// snapshot should be sanitize()d (SnapshotJSON's path already is);
// non-finite values would otherwise leak into the text verbatim.
func WritePrometheusSnapshot(w io.Writer, d *SnapshotData) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(d.Counters))
	for n := range d.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := PromName(n) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", fam, fam, d.Counters[n])
	}

	names = names[:0]
	for n := range d.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", fam, fam, d.Gauges[n])
	}

	writeSummary := func(n string, st SampleStats) {
		fam := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s summary\n", fam)
		fmt.Fprintf(bw, "%s_sum %s\n", fam, promFloat(st.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, st.Count)
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n%s_min %s\n", fam, fam, promFloat(st.Min))
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %s\n", fam, fam, promFloat(st.Max))
	}
	names = names[:0]
	for n := range d.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeSummary(n, d.Timers[n])
	}
	names = names[:0]
	for n := range d.Samples {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeSummary(n, d.Samples[n])
	}

	names = names[:0]
	for n := range d.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	bounds := HistBounds()
	for _, n := range names {
		st := d.Histograms[n]
		fam := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, b := range bounds {
			if i < len(st.Buckets) {
				cum += st.Buckets[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", fam, promFloat(b), cum)
		}
		if len(st.Buckets) > len(bounds) {
			cum += st.Buckets[len(bounds)]
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", fam, promFloat(st.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", fam, cum)
	}

	return bw.Flush()
}

// LintPrometheus validates a text exposition: every line parses, every
// sample belongs to a family a preceding # TYPE line declared, counter
// and histogram sample suffixes match their declared type, histogram
// buckets are cumulative over ascending le bounds with a +Inf bucket
// equal to _count, and _sum/_count are present wherever buckets are.
// When known is non-nil, every family name must satisfy it - the hook
// cmd/metricscheck uses to pin the exposition to the declared schema.
func LintPrometheus(data []byte, known func(family string) bool) error {
	type histState struct {
		prev     float64 // last le bound
		prevCum  int64   // last cumulative bucket value
		buckets  int
		inf      bool
		infVal   int64
		sum      bool
		count    bool
		countVal int64
	}
	types := map[string]string{}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prom line %d: malformed TYPE: %q", lineNo, line)
				}
				fam, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("prom line %d: unknown type %q for %s", lineNo, typ, fam)
				}
				if prev, dup := types[fam]; dup && prev != typ {
					return fmt.Errorf("prom line %d: family %s re-declared as %s (was %s)", lineNo, fam, typ, prev)
				}
				types[fam] = typ
				if typ == "histogram" {
					hists[fam] = &histState{prev: math.Inf(-1)}
				}
				if known != nil && !known(fam) {
					return fmt.Errorf("prom line %d: family %s not in the declared schema", lineNo, fam)
				}
			}
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom line %d: %v", lineNo, err)
		}
		fam, sampleKind := promFamily(name, labels, types)
		if fam == "" {
			return fmt.Errorf("prom line %d: sample %s has no preceding # TYPE declaration", lineNo, name)
		}
		h := hists[fam]
		switch sampleKind {
		case "bucket":
			if h == nil {
				return fmt.Errorf("prom line %d: %s_bucket outside a histogram family", lineNo, fam)
			}
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("prom line %d: histogram bucket without le label", lineNo)
			}
			cum := int64(value)
			if le == "+Inf" {
				h.inf, h.infVal = true, cum
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("prom line %d: bad le %q: %v", lineNo, le, err)
				}
				if bound <= h.prev {
					return fmt.Errorf("prom line %d: %s le bounds not ascending (%g after %g)", lineNo, fam, bound, h.prev)
				}
				if h.inf {
					return fmt.Errorf("prom line %d: %s finite bucket after +Inf", lineNo, fam)
				}
				h.prev = bound
			}
			if cum < h.prevCum {
				return fmt.Errorf("prom line %d: %s buckets not cumulative (%d after %d)", lineNo, fam, cum, h.prevCum)
			}
			h.prevCum = cum
			h.buckets++
		case "sum":
			if h != nil {
				h.sum = true
			}
		case "count":
			if h != nil {
				h.count, h.countVal = true, int64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("prom scan: %v", err)
	}
	for fam, h := range hists {
		if h.buckets == 0 {
			return fmt.Errorf("prom: histogram %s has no buckets", fam)
		}
		if !h.inf {
			return fmt.Errorf("prom: histogram %s missing +Inf bucket", fam)
		}
		if !h.sum {
			return fmt.Errorf("prom: histogram %s missing _sum", fam)
		}
		if !h.count {
			return fmt.Errorf("prom: histogram %s missing _count", fam)
		}
		if h.infVal != h.countVal {
			return fmt.Errorf("prom: histogram %s +Inf bucket %d != _count %d", fam, h.infVal, h.countVal)
		}
	}
	return nil
}

// promFamily resolves a sample name to its declared family and the
// sample's role within it ("bucket", "sum", "count" or "").
func promFamily(name string, labels map[string]string, types map[string]string) (string, string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
			return base, suffix[1:]
		}
	}
	_ = labels
	return "", ""
}

// parsePromSample splits one exposition sample line into name, labels
// and value. Timestamps (a trailing integer) are accepted and ignored.
func parsePromSample(line string) (string, map[string]string, float64, error) {
	name := line
	labels := map[string]string{}
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced labels in %q", line)
		}
		name = line[:i]
		for _, pair := range splitPromLabels(line[i+1 : j]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return "", nil, 0, fmt.Errorf("label %s value %s: %v", k, v, err)
			}
			labels[k] = uq
		}
		line = line[j+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		line = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q has %d value fields", name, len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s value %q: %v", name, fields[0], err)
	}
	if !promNameOK(name) {
		return "", nil, 0, fmt.Errorf("illegal metric name %q", name)
	}
	return name, labels, v, nil
}

// splitPromLabels splits a label body on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

// promNameOK reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
