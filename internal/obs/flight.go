package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Event is one structured flight-recorder entry: a state transition, a
// cell start/finish/error, an rcce watchdog tick, a cache eviction. The
// recorder stamps Seq and UnixNano itself so emission sites inside the
// simulation packages never touch the clock (sccvet's nondeterminism
// analyzer bans time.Now there, and the telemetry layer must stay
// write-only either way).
type Event struct {
	// Seq orders events totally within one recorder, even when two
	// arrive in the same nanosecond.
	Seq uint64 `json:"seq"`
	// UnixNano is the wall-clock stamp the recorder applied.
	UnixNano int64 `json:"unix_nano"`
	// DurNanos is the event's duration for timed events (0 = instant).
	DurNanos int64 `json:"dur_nanos,omitempty"`
	// Track groups events onto one timeline row in the trace export
	// (e.g. "serve.job", "sparse.matrix_cache", "rcce", "experiments.cell/w3").
	Track string `json:"track"`
	// Kind is the machine-readable event class (e.g. "state", "cell_error",
	// "cache_evict", "watchdog_tick", "task").
	Kind string `json:"kind"`
	// Name is the short human label shown on the timeline.
	Name string `json:"name"`
	// Detail is the free-form payload (error text, matrix id, rank list).
	Detail string `json:"detail,omitempty"`
}

// Recorder is a bounded per-job ring buffer of Events - the flight
// recorder. Writers pay one mutex-protected slot store; when the ring
// wraps, the oldest events fall off and Dropped counts them, so a
// wedged job's snapshot always holds the LAST events before the wedge,
// which are the ones a post-mortem needs.
//
// Like every metric here the recorder is write-only for the engine:
// nothing reads it back mid-run, so arming it cannot change a result
// byte. A nil *Recorder accepts every call and records nothing, which
// is how the non-serving paths run with zero overhead.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	head    int    // next write position
	total   uint64 // events ever recorded (also the Seq source)
	started time.Time
}

// DefaultFlightEvents is the ring capacity used when a caller passes a
// non-positive one.
const DefaultFlightEvents = 256

// NewRecorder builds a flight recorder holding the last n events
// (n <= 0 selects DefaultFlightEvents).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Recorder{buf: make([]Event, 0, n), started: now()}
}

// Record appends an instant event, stamping sequence and time.
func (r *Recorder) Record(track, kind, name, detail string) {
	r.record(Event{Track: track, Kind: kind, Name: name, Detail: detail})
}

// Recordf is Record with a formatted detail string.
func (r *Recorder) Recordf(track, kind, name, format string, args ...any) {
	if r == nil {
		return
	}
	r.record(Event{Track: track, Kind: kind, Name: name, Detail: fmt.Sprintf(format, args...)})
}

// RecordDur appends a timed event whose duration is d (clamped at
// zero). The stamp marks the event's END; the trace exporter derives
// the start by subtraction.
func (r *Recorder) RecordDur(track, kind, name, detail string, d time.Duration) {
	r.record(Event{Track: track, Kind: kind, Name: name, Detail: detail,
		DurNanos: int64(ClampDuration(d))})
}

func (r *Recorder) record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	e.UnixNano = now().UnixNano()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.head] = e
	}
	r.head++
	if r.head == cap(r.buf) {
		r.head = 0
	}
	r.mu.Unlock()
}

// FlightSnapshot is the exported tail of a recorder: the retained
// events in sequence order plus how many older ones the ring dropped.
type FlightSnapshot struct {
	// Dropped counts events that fell off the ring before the snapshot.
	Dropped uint64 `json:"dropped,omitempty"`
	// Events is the retained tail, oldest first.
	Events []Event `json:"events"`
}

// Snapshot copies the retained events in sequence order. Nil-safe; a
// recorder that never fired returns an empty (non-nil) snapshot.
func (r *Recorder) Snapshot() *FlightSnapshot {
	out := &FlightSnapshot{Events: []Event{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out.Events = make([]Event, 0, n)
	if n < cap(r.buf) {
		out.Events = append(out.Events, r.buf...)
	} else {
		out.Events = append(out.Events, r.buf[r.head:]...)
		out.Events = append(out.Events, r.buf[:r.head]...)
	}
	out.Dropped = r.total - uint64(n)
	return out
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// recorderKey carries a *Recorder through a context.
type recorderKey struct{}

// WithRecorder returns a context carrying rec, so instrumented code
// deep in the engine (pool workers, cache, rcce bridge) can emit
// events for the job that owns the context without new plumbing.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom extracts the context's recorder, or nil (every Recorder
// method accepts nil, so call sites never branch).
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
