package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Reporter periodically writes a one-line heartbeat of the registry's
// counters (current value plus the rate over the last interval) - the
// -progress stream of cmd/sccsim. It only ever reads metrics, so it
// cannot perturb the engine.
type Reporter struct {
	reg      *Registry
	w        io.Writer
	interval time.Duration

	mu   sync.Mutex
	prev map[string]uint64
	last time.Time

	stop chan struct{}
	done chan struct{}
}

// NewReporter builds a reporter over reg writing to w every interval
// (minimum 100ms; a non-positive interval defaults to 1s).
func NewReporter(reg *Registry, w io.Writer, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Reporter{
		reg:      reg,
		w:        w,
		interval: interval,
		prev:     make(map[string]uint64),
		last:     now(),
	}
}

// Start launches the heartbeat goroutine. Stop it with Stop; starting
// twice is a no-op.
func (r *Reporter) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.tick()
			}
		}
	}(r.stop, r.done)
}

// Stop halts the heartbeat, emitting one final line so short runs still
// report.
func (r *Reporter) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	r.tick()
}

// tick writes one heartbeat line: elapsed wall time followed by every
// nonzero counter as name=value(+rate/s).
func (r *Reporter) tick() {
	snap := r.reg.Snapshot()
	ts := now()

	r.mu.Lock()
	// since() semantics by hand: a stepped clock must not yield a
	// negative interval (which would flip the rate's sign).
	dt := ts.Sub(r.last).Seconds()
	if dt < 0 {
		dt = 0
	}
	names := make([]string, 0, len(snap.Counters))
	for n, v := range snap.Counters {
		if v > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "[obs] t=%.1fs", snap.WallSeconds)
	for _, n := range names {
		v := snap.Counters[n]
		fmt.Fprintf(&b, " %s=%s", n, compact(v))
		if dt > 0 {
			if d := v - r.prev[n]; d > 0 {
				fmt.Fprintf(&b, "(+%s/s)", compact(uint64(float64(d)/dt+0.5)))
			}
		}
		r.prev[n] = v
	}
	r.last = ts
	r.mu.Unlock()

	fmt.Fprintln(r.w, b.String())
}

// compact renders large counts with a k/M/G suffix to keep the
// heartbeat line readable.
func compact(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 10e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
