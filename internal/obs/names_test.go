package obs

import "testing"

func TestMetricSchemaKindsAreValid(t *testing.T) {
	valid := map[string]bool{
		KindCounter: true, KindGauge: true, KindTimer: true,
		KindSample: true, KindHistogram: true, KindPool: true,
	}
	for name, kind := range MetricSchema() {
		if name == "" {
			t.Error("schema holds an empty metric name")
		}
		if !valid[kind] {
			t.Errorf("metric %q declared with unknown kind %q", name, kind)
		}
	}
}

func TestRequiredEngineCountersAreDeclared(t *testing.T) {
	// Every counter metricscheck demands must be in the schema - either an
	// exact counter entry or a pool-derived .tasks name - or the two
	// consumers of the table have already forked.
	sch := MetricSchema()
	for _, name := range RequiredEngineCounters() {
		if !KnownMetricName(name) {
			t.Errorf("required counter %q is not covered by the schema", name)
		}
		if kind, ok := sch[name]; ok && kind != KindCounter {
			t.Errorf("required counter %q is declared as a %s", name, kind)
		}
	}
}

func TestKnownMetricNamePoolDerivation(t *testing.T) {
	for _, name := range []string{
		"sim.ue_walk.tasks", "sim.ue_walk.task_seconds", "sim.ue_walk.occupancy",
		"sim.ue_walk.task_duration_seconds", "experiments.cell.task_duration_seconds",
		"serve.worker.tasks", "experiments.cell.occupancy",
	} {
		if !KnownMetricName(name) {
			t.Errorf("pool-derived name %q should be known", name)
		}
	}
	for _, name := range []string{
		"sim.ue_walk.bogus", "serve.workerx.tasks", "unheard.of.counter", ".tasks",
	} {
		if KnownMetricName(name) {
			t.Errorf("name %q should be unknown", name)
		}
	}
}
