package obs

import "sort"

// The declared metrics schema. Every counter, gauge, timer, sample and
// pool prefix the engine registers by string literal is listed here, with
// its kind. The table is the single source of truth two consumers share:
//
//   - sccvet's counter-drift analyzer (internal/lint) rejects any
//     Registry.Counter/Gauge/Timer/Sample/Pool call whose name literal is
//     absent or registered under the wrong kind, so the metrics namespace
//     cannot silently fork at an increment site;
//   - cmd/metricscheck validates -metrics snapshots against the same
//     table, so a name that drifts at runtime (a dynamically built name
//     outside the declared families) fails the metrics-smoke gate.
//
// Adding a metric therefore means adding its name here first; the vet
// gate fails otherwise, naming the undeclared site.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindTimer   = "timer"
	KindSample  = "sample"
	// KindHistogram declares a log-bucketed distribution (Registry.
	// Histogram) with the shared HistBounds bucket ladder.
	KindHistogram = "histogram"
	// KindPool declares a worker-pool prefix; Registry.Pool derives
	// <prefix>.tasks (counter), <prefix>.task_seconds (timer),
	// <prefix>.task_duration_seconds (histogram) and
	// <prefix>.occupancy (sample) from it.
	KindPool = "pool"
)

// poolSuffixes maps each name Registry.Pool derives from its prefix onto
// the kind of the derived metric.
var poolSuffixes = map[string]string{
	".tasks":                 KindCounter,
	".task_seconds":          KindTimer,
	".task_duration_seconds": KindHistogram,
	".occupancy":             KindSample,
}

var schema = map[string]string{
	// internal/sparse matrix cache (matrices + analytic profile blobs).
	"sparse.matrix_cache.hits":                   KindCounter,
	"sparse.matrix_cache.misses":                 KindCounter,
	"sparse.matrix_cache.evictions":              KindCounter,
	"sparse.matrix_cache.duplicate_generations":  KindCounter,
	"sparse.matrix_cache.duplicate_bytes_wasted": KindCounter,
	"sparse.matrix_cache.profile_hits":           KindCounter,
	"sparse.matrix_cache.profile_misses":         KindCounter,
	"sparse.matrix_cache.profile_evictions":      KindCounter,
	"sparse.matrix_cache.used_bytes":             KindGauge,
	"sparse.matrix_cache.resident":               KindGauge,
	"sparse.matrix_cache.profile_used_bytes":     KindGauge,
	"sparse.matrix_cache.profile_resident":       KindGauge,

	// internal/sim engine core and pricing backends.
	"sim.flops.simulated":         KindCounter,
	"sim.sweep.runs":              KindCounter,
	"sim.sweep.machine_runs":      KindCounter,
	"sim.pricing.profiles_built":  KindCounter,
	"sim.pricing.profiles_reused": KindCounter,
	"sim.pricing.cells_analytic":  KindCounter,
	"sim.pricing.cells_exact":     KindCounter,
	"sim.ue_walk":                 KindPool,

	// internal/experiments sweep pipeline.
	"experiments.matrix.visits":        KindCounter,
	"experiments.cell.errors":          KindCounter,
	"experiments.matrix.fetch_seconds": KindTimer,
	"experiments.cell":                 KindPool,

	// internal/mem per-controller contention distributions.
	"mem.mc0.slowdown":         KindSample,
	"mem.mc1.slowdown":         KindSample,
	"mem.mc2.slowdown":         KindSample,
	"mem.mc3.slowdown":         KindSample,
	"mem.mc_other.slowdown":    KindSample,
	"mem.mc0.utilization":      KindSample,
	"mem.mc1.utilization":      KindSample,
	"mem.mc2.utilization":      KindSample,
	"mem.mc3.utilization":      KindSample,
	"mem.mc_other.utilization": KindSample,

	// internal/spmv executable kernels.
	"spmv.parallel": KindPool,

	// internal/serve job daemon and result store.
	"serve.jobs.submitted":  KindCounter,
	"serve.jobs.cache_hits": KindCounter,
	"serve.jobs.coalesced":  KindCounter,
	"serve.jobs.completed":  KindCounter,
	"serve.jobs.failed":     KindCounter,
	"serve.jobs.cancelled":  KindCounter,
	"serve.jobs.rejected":   KindCounter,
	"serve.jobs.running":    KindGauge,
	"serve.jobs.queued":     KindGauge,
	// Per-job latency distributions: time spent queued before a worker
	// picked the job up, and execution wall time.
	"serve.jobs.queue_wait_seconds": KindHistogram,
	"serve.jobs.exec_seconds":       KindHistogram,
	"serve.store.hits":              KindCounter,
	"serve.store.misses":            KindCounter,
	"serve.store.evictions":         KindCounter,
	"serve.store.used_bytes":        KindGauge,
	"serve.store.resident":          KindGauge,
	"serve.worker":                  KindPool,
	"serve.run":                     KindPool,

	// cmd/sccsimd loopback selfcheck.
	"sccsimd.selfcheck": KindPool,
}

// MetricSchema returns a copy of the declared name table (name -> kind).
func MetricSchema() map[string]string {
	out := make(map[string]string, len(schema))
	for n, k := range schema {
		out[n] = k
	}
	return out
}

// KnownMetricName reports whether a runtime metric name is covered by the
// schema: an exact entry, or a name one of the declared pool prefixes
// derives (<prefix>.tasks, <prefix>.task_seconds, <prefix>.occupancy).
func KnownMetricName(name string) bool {
	if _, ok := schema[name]; ok {
		return true
	}
	for suffix := range poolSuffixes {
		if prefix, ok := cutSuffix(name, suffix); ok && schema[prefix] == KindPool {
			return true
		}
	}
	return false
}

// cutSuffix is strings.CutSuffix without pulling strings in for one call.
func cutSuffix(s, suffix string) (string, bool) {
	if len(s) <= len(suffix) || s[len(s)-len(suffix):] != suffix {
		return s, false
	}
	return s[:len(s)-len(suffix)], true
}

// MetricNames returns every declared name, sorted (diagnostics).
func MetricNames() []string {
	names := make([]string, 0, len(schema))
	for n := range schema {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RequiredEngineCounters is the counter set every engine run must
// produce, shared by cmd/metricscheck (the metrics-smoke gate). Each
// entry must also appear in the schema - names_test pins that.
func RequiredEngineCounters() []string {
	return []string{
		"sim.flops.simulated",
		"sim.sweep.runs",
		"sim.ue_walk.tasks",
		"experiments.cell.tasks",
		"experiments.matrix.visits",
		"sparse.matrix_cache.misses",
	}
}
