package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Add(3)
	c.Add(2)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Load())
	}
	var nilC *Counter
	var nilG *Gauge
	nilC.Add(1) // nil metrics must be safe no-ops
	nilG.Set(1)
	if nilC.Load() != 0 || nilG.Load() != 0 {
		t.Fatal("nil metric loads must be zero")
	}
}

func TestSampleAndTimerStats(t *testing.T) {
	r := New()
	s := r.Sample("s")
	for _, v := range []float64{2, 8, 5} {
		s.Observe(v)
	}
	st := s.Stats()
	if st.Count != 3 || st.Sum != 15 || st.Min != 2 || st.Max != 8 || st.Mean != 5 {
		t.Fatalf("sample stats = %+v", st)
	}
	tm := r.Timer("t")
	tm.Observe(100 * time.Millisecond)
	tm.Observe(300 * time.Millisecond)
	ts := tm.Stats()
	if ts.Count != 2 || ts.Min < 0.09 || ts.Max > 0.31 || ts.Sum < 0.39 || ts.Sum > 0.41 {
		t.Fatalf("timer stats = %+v", ts)
	}
	if (&Sample{}).Stats().Count != 0 {
		t.Fatal("zero sample must report empty stats")
	}
}

func TestDisabledRegistryDropsObservations(t *testing.T) {
	r := New()
	c := r.Counter("c")
	s := r.Sample("s")
	g := r.Gauge("g")
	c.Add(1)
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("registry should report disabled")
	}
	c.Add(10)
	s.Observe(4)
	g.Set(9)
	if sp := r.StartSpan("root"); sp != nil {
		t.Fatal("disabled registry must hand out nil spans")
	}
	r.SetEnabled(true)
	if c.Load() != 1 {
		t.Fatalf("disabled counter advanced: %d", c.Load())
	}
	if s.Stats().Count != 0 || g.Load() != 0 {
		t.Fatal("disabled sample/gauge recorded")
	}
	c.Add(2)
	if c.Load() != 3 {
		t.Fatal("re-enabled counter must record again")
	}
}

func TestCountersAreConcurrencySafe(t *testing.T) {
	r := New()
	c := r.Counter("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("x.count").Add(42)
	r.Gauge("x.gauge").Set(-3)
	r.Timer("x.timer").Observe(time.Millisecond)
	r.Sample("x.sample").Observe(1.5)
	sp := r.StartSpan("run")
	sp.StartChild("phase").End()
	sp.Record("leaf", 2*time.Millisecond)
	sp.End()

	blob, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap SnapshotData
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, blob)
	}
	if snap.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if snap.Counters["x.count"] != 42 || snap.Gauges["x.gauge"] != -3 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	if snap.Timers["x.timer"].Count != 1 || snap.Samples["x.sample"].Count != 1 {
		t.Fatalf("distributions missing: %+v", snap)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "run" {
		t.Fatalf("spans missing: %+v", snap.Spans)
	}
	root := snap.Spans[0]
	if len(root.Children) != 1 || root.Children[0].Name != "phase" {
		t.Fatalf("span children wrong: %+v", root)
	}
	if root.Rollup["leaf"].Count != 1 {
		t.Fatalf("span rollup wrong: %+v", root.Rollup)
	}
	if snap.WallSeconds < 0 {
		t.Fatalf("wall seconds negative: %v", snap.WallSeconds)
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := New()
	r.Counter("b")
	r.Counter("a")
	r.Counter("c")
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestReporterTick(t *testing.T) {
	r := New()
	r.Counter("work.done").Add(12345)
	r.Counter("silent") // zero counters stay off the heartbeat
	var buf strings.Builder
	rep := NewReporter(r, &buf, time.Second)
	rep.tick()
	line := buf.String()
	if !strings.Contains(line, "[obs]") || !strings.Contains(line, "work.done=12.3k") {
		t.Fatalf("heartbeat line = %q", line)
	}
	if strings.Contains(line, "silent") {
		t.Fatalf("zero counter reported: %q", line)
	}
}

func TestReporterStartStop(t *testing.T) {
	r := New()
	r.Counter("c").Add(1)
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	rep := NewReporter(r, w, 100*time.Millisecond)
	rep.Start()
	rep.Start() // double start is a no-op
	rep.Stop()  // emits a final line even if no tick elapsed
	rep.Stop()  // double stop is a no-op
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "c=1") {
		t.Fatalf("no final heartbeat: %q", buf.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
