package obs

// Per-job metric scoping. The registry's counters are process-wide and
// monotone, which is exactly right for a single experiment run but not
// for a long-running daemon that executes many jobs against the same
// registry: a job's report should cover what *that job* did. A
// CounterScope captures a baseline of every counter at a point in time
// and reports the deltas accumulated since, so a server can attach
// "this job ran N cells, fetched M matrices, reused K profiles" to each
// job without resetting (and thereby corrupting) the global counters.
//
// Deltas are computed from the shared registry, so they are exact when
// at most one scoped activity runs at a time and an upper bound when
// scopes overlap (concurrent jobs both observe each other's traffic).
// Like everything in this package the scope is read-only: taking one
// cannot change any engine output.

// CounterScope is a point-in-time baseline of a registry's counters.
type CounterScope struct {
	reg  *Registry
	base map[string]uint64
}

// ScopeCounters captures the current value of every registered counter
// as the baseline for delta reporting.
func (r *Registry) ScopeCounters() *CounterScope {
	s := &CounterScope{reg: r, base: make(map[string]uint64)}
	r.mu.Lock()
	for n, c := range r.counters {
		s.base[n] = c.Load()
	}
	r.mu.Unlock()
	return s
}

// Deltas returns every counter that advanced since the scope was taken
// (counters registered after the baseline count from zero). The map is
// freshly allocated; zero deltas are omitted.
func (s *CounterScope) Deltas() map[string]uint64 {
	if s == nil {
		return nil
	}
	out := make(map[string]uint64)
	s.reg.mu.Lock()
	for n, c := range s.reg.counters {
		if d := c.Load() - s.base[n]; d > 0 {
			out[n] = d
		}
	}
	s.reg.mu.Unlock()
	return out
}

// Delta returns how far one named counter advanced since the scope was
// taken (0 for unknown counters).
func (s *CounterScope) Delta(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.reg.Counter(name).Load() - s.base[name]
}

// StartDetachedSpan opens a root span that is NOT retained in the
// registry: the caller owns its lifetime and snapshots it explicitly
// (Span.Snapshot). This is the span form of per-job scoping - a daemon
// serving millions of jobs reports each job's trace with the job and
// must not grow the process snapshot without bound. Returns nil when
// recording is off, like StartSpan.
func (r *Registry) StartDetachedSpan(name string) *Span {
	if r.disabled.Load() {
		return nil
	}
	return newSpan(name)
}

// Snapshot renders the span subtree in its JSON form (nil-safe). Spans
// still running report their live duration.
func (s *Span) Snapshot() *SpanSnapshot { return s.snapshot() }
