package obs

import (
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	r := New()
	run := r.StartSpan("run")
	exp := run.StartChild("exp:fig9")
	mat := exp.StartChild("matrix:F1")
	cell := mat.StartChild("cell")
	cell.Record("ue-walk", 3*time.Millisecond)
	cell.Record("ue-walk", 5*time.Millisecond)
	cell.End()
	mat.End()
	exp.End()
	run.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap.Spans))
	}
	c := snap.Spans[0].Children[0].Children[0].Children[0]
	if c.Name != "cell" {
		t.Fatalf("leaf = %q, want cell", c.Name)
	}
	ru := c.Rollup["ue-walk"]
	if ru.Count != 2 || ru.Seconds < 0.007 {
		t.Fatalf("ue-walk rollup = %+v", ru)
	}
	if c.Running {
		t.Fatal("ended span reported running")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.StartChild("x") // nil parent -> nil child, no panic
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.Record("y", time.Millisecond)
	c.End()
	s.End()
}

func TestSpanChildCapFoldsIntoRollup(t *testing.T) {
	r := New()
	root := r.StartSpan("run")
	for i := 0; i < maxSpanChildren+10; i++ {
		c := root.StartChild("cell")
		c.End()
	}
	root.End()
	snap := root.snapshot()
	if len(snap.Children) != maxSpanChildren {
		t.Fatalf("children = %d, want cap %d", len(snap.Children), maxSpanChildren)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
	// The 10 capped children still contribute their timings exactly,
	// via the parent rollup.
	if snap.Rollup["cell"].Count != 10 {
		t.Fatalf("rollup = %+v, want 10 capped cells", snap.Rollup)
	}
}

func TestSpanDoubleEndKeepsFirstDuration(t *testing.T) {
	r := New()
	s := r.StartSpan("s")
	s.End()
	first := s.snapshot().Seconds
	time.Sleep(5 * time.Millisecond)
	s.End()
	if got := s.snapshot().Seconds; got != first {
		t.Fatalf("second End changed duration: %v -> %v", first, got)
	}
}

func TestRunningSpanReportsElapsed(t *testing.T) {
	r := New()
	s := r.StartSpan("s")
	time.Sleep(2 * time.Millisecond)
	snap := s.snapshot()
	if !snap.Running || snap.Seconds <= 0 {
		t.Fatalf("running span snapshot = %+v", snap)
	}
	s.End()
}
