package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("geomean of zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMinMaxMedian(t *testing.T) {
	v := []float64{5, 1, 3}
	if Min(v) != 1 || Max(v) != 5 || Median(v) != 3 {
		t.Fatalf("min/max/median = %v/%v/%v", Min(v), Max(v), Median(v))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{2, 2, 2}) != 0 {
		t.Fatal("constant stddev != 0")
	}
	if got := Stddev([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("stddev = %v, want 1", got)
	}
	if Stddev(nil) != 0 {
		t.Fatal("empty stddev")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2, 3) != 1.5 {
		t.Fatal("speedup")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero baseline did not panic")
		}
	}()
	Speedup(0, 1)
}

func TestFractionAbove(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := FractionAbove(v, 2); got != 0.5 {
		t.Fatalf("fraction = %v", got)
	}
	if FractionAbove(nil, 0) != 0 {
		t.Fatal("empty fraction")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("summary string = %q", s.String())
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345.0)
	tb.AddNote("calibrated to %d entries", 2)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "note: calibrated to 2 entries") {
		t.Fatalf("missing note:\n%s", out)
	}
	// Header separator present and aligned (same line count check).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 2 rows, note
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows() = %d", tb.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"u`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Fatalf("CSV quoting broken: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("CSV header: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.25:   "42.2",
		3.14159: "3.14",
		0.0001:  "1.00e-04",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, math.Mod(x, 1e6))
			}
		}
		if len(v) == 0 {
			return true
		}
		s := Summarize(v)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
