// Package stats provides the small numeric summaries the experiment
// harness reports (means, geometric means, speedups) and a fixed-width
// text-table renderer for the regenerated paper tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// GeoMean returns the geometric mean; it panics on non-positive inputs
// (speedups and throughputs are positive by construction).
func GeoMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(v []float64) float64 {
	m := math.Inf(1)
	for _, x := range v {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		m = math.Max(m, x)
	}
	return m
}

// Median returns the median, or 0 for an empty slice.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Stddev returns the population standard deviation.
func Stddev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Speedup returns new/old and panics on a non-positive baseline.
func Speedup(baseline, improved float64) float64 {
	if baseline <= 0 {
		panic(fmt.Sprintf("stats: speedup against non-positive baseline %v", baseline))
	}
	return improved / baseline
}

// FractionAbove returns the fraction of values strictly above the threshold.
func FractionAbove(v []float64, threshold float64) float64 {
	if len(v) == 0 {
		return 0
	}
	n := 0
	for _, x := range v {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(v))
}

// Summary is a five-number description of a sample.
type Summary struct {
	N                           int
	Mean, Min, Median, Max, Std float64
}

// Summarize computes a Summary.
func Summarize(v []float64) Summary {
	if len(v) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(v),
		Mean:   Mean(v),
		Min:    Min(v),
		Median: Median(v),
		Max:    Max(v),
		Std:    Stddev(v),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g med=%.3g max=%.3g std=%.3g",
		s.N, s.Mean, s.Min, s.Median, s.Max, s.Std)
}
