package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned fixed-width text tables - the output format of the
// experiment harness (one table per regenerated paper figure/table).
type Table struct {
	title    string
	preamble []string
	headers  []string
	rows     [][]string
	notes    []string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddPreamble appends raw text printed verbatim between the title and the
// header row - used for ASCII-art figures (chip floorplans, format
// diagrams) that accompany a table.
func (t *Table) AddPreamble(text string) *Table {
	t.preamble = append(t.preamble, text)
	return t
}

// AddNote appends a free-text footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	for _, p := range t.preamble {
		b.WriteString(p)
		if !strings.HasSuffix(p, "\n") {
			b.WriteByte('\n')
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the data as comma-separated values (header + rows), quoting
// cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// formatFloat picks a compact human-friendly representation.
func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a == 0:
		return "0"
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}
