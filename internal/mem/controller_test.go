package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func ctl() Controller { return Controller{ID: 0, MemMHz: 800} }

func TestPeakBandwidth(t *testing.T) {
	if got := ctl().PeakBytesPerSec(); got != 800e6*8 {
		t.Fatalf("peak = %v, want 6.4e9", got)
	}
	fast := Controller{ID: 0, MemMHz: 1066}
	if fast.PeakBytesPerSec() <= ctl().PeakBytesPerSec() {
		t.Fatal("1066 MHz controller not faster")
	}
}

func TestPeakPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero clock did not panic")
		}
	}()
	Controller{}.PeakBytesPerSec()
}

func TestReadBandwidthFlatInReaders(t *testing.T) {
	c := ctl()
	one := c.EffectiveReadBW(1)
	twelve := c.EffectiveReadBW(12)
	if one != twelve {
		t.Fatalf("read BW changed with readers: %v vs %v", one, twelve)
	}
	if one <= 0 || one >= c.PeakBytesPerSec() {
		t.Fatalf("read BW %v outside (0, peak)", one)
	}
	if c.EffectiveReadBW(0) != 0 {
		t.Fatal("zero readers should have zero bandwidth")
	}
}

func TestWriteBandwidthDegradesWithWriters(t *testing.T) {
	// The Melot et al. asymmetry the paper cites: aggregate write
	// throughput decreases as writers are added.
	c := ctl()
	prev := c.EffectiveWriteBW(1)
	for k := 2; k <= 12; k++ {
		cur := c.EffectiveWriteBW(k)
		if cur >= prev {
			t.Fatalf("write BW did not degrade at %d writers: %v >= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestReadsSustainMoreThanContendedWrites(t *testing.T) {
	c := ctl()
	if c.EffectiveReadBW(12) <= c.EffectiveWriteBW(12) {
		t.Fatal("12-reader bandwidth should beat 12-writer bandwidth")
	}
}

func TestSlowdownBelowSaturationIsOne(t *testing.T) {
	c := ctl()
	// One core reading 1 MB over 1 second: utterly under-subscribed.
	d := []CoreDemand{{ReadBytes: 1 << 20, TimeSec: 1}}
	if s := Slowdown(c, d); s < 1 || s > 1.01 {
		t.Fatalf("slowdown = %v, want ~1 (negligible queueing)", s)
	}
	if Slowdown(c, nil) != 1 {
		t.Fatal("empty demand should not slow down")
	}
	if Slowdown(c, []CoreDemand{{ReadBytes: 100, TimeSec: 0}}) != 1 {
		t.Fatal("zero window should not slow down")
	}
	// At half utilisation the queueing term applies: 1 + 0.3*0.5 = 1.15.
	bw := c.EffectiveReadBW(1)
	half := []CoreDemand{{ReadBytes: bw / 2, TimeSec: 1}}
	if s := Slowdown(c, half); math.Abs(s-1.15) > 1e-9 {
		t.Fatalf("half-utilisation slowdown = %v, want 1.15", s)
	}
}

func TestSlowdownAtSaturation(t *testing.T) {
	c := ctl()
	bw := c.EffectiveReadBW(1)
	// Demand exactly 2x the effective read bandwidth over 1 second.
	d := []CoreDemand{{ReadBytes: 2 * bw, TimeSec: 1}}
	if s := Slowdown(c, d); math.Abs(s-2) > 1e-9 {
		t.Fatalf("slowdown = %v, want 2", s)
	}
}

func TestSlowdownAggregatesCores(t *testing.T) {
	c := ctl()
	bw := c.EffectiveReadBW(12)
	per := bw / 4 // each core asks a quarter of the capacity
	var ds []CoreDemand
	for i := 0; i < 12; i++ {
		ds = append(ds, CoreDemand{ReadBytes: per, TimeSec: 1})
	}
	// 12 cores x bw/4 = 3x oversubscription.
	if s := Slowdown(c, ds); math.Abs(s-3) > 1e-9 {
		t.Fatalf("slowdown = %v, want 3", s)
	}
}

func TestSlowdownCountsWritesSeparately(t *testing.T) {
	c := ctl()
	// Push past saturation so the slowdown is demand-sensitive.
	readOnly := []CoreDemand{{ReadBytes: 5e9, TimeSec: 1}}
	readWrite := []CoreDemand{{ReadBytes: 5e9, WriteBytes: 2e9, TimeSec: 1}}
	if Slowdown(c, readWrite) <= Slowdown(c, readOnly) {
		t.Fatal("adding write traffic did not increase slowdown")
	}
}

func TestWriteHeavySlowdownWorsensWithWriters(t *testing.T) {
	c := ctl()
	mk := func(k int) []CoreDemand {
		ds := make([]CoreDemand, k)
		for i := range ds {
			ds[i] = CoreDemand{WriteBytes: 4e9 / float64(k), TimeSec: 1}
		}
		return ds
	}
	// Same total write demand split over more writers gets slower
	// because aggregate write bandwidth degrades.
	if Slowdown(c, mk(12)) <= Slowdown(c, mk(2)) {
		t.Fatal("write slowdown should worsen with writer count")
	}
}

func TestUtilizationReporting(t *testing.T) {
	c := ctl()
	bw := c.EffectiveReadBW(1)
	half := []CoreDemand{{ReadBytes: bw / 2, TimeSec: 1}}
	u := Utilization(c, half)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	over := []CoreDemand{{ReadBytes: 3 * bw, TimeSec: 1}}
	if got := Utilization(c, over); math.Abs(got-3) > 1e-9 {
		t.Fatalf("oversubscribed utilization = %v, want 3", got)
	}
	if Utilization(c, nil) != 0 {
		t.Fatal("empty utilization != 0")
	}
}

// Property: slowdown is always >= 1 and monotone in added demand.
func TestQuickSlowdownMonotone(t *testing.T) {
	c := ctl()
	f := func(r1, w1, r2, w2 uint32) bool {
		d1 := []CoreDemand{{ReadBytes: float64(r1), WriteBytes: float64(w1), TimeSec: 0.01}}
		d2 := append(d1, CoreDemand{ReadBytes: float64(r2), WriteBytes: float64(w2), TimeSec: 0.01})
		s1, s2 := Slowdown(c, d1), Slowdown(c, d2)
		return s1 >= 1 && s2 >= s1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
