// Package mem models the SCC's four DDR3 memory controllers as shared
// bandwidth resources. The per-access latency lives in package scc (the
// documented 40/8·n/46-cycle formula); this package supplies what the
// latency formula cannot: saturation when many cores stream through one
// controller, and the read/write asymmetry Melot et al. measured on the
// real chip (per-core read bandwidth holds up as readers are added, but
// aggregate write throughput degrades with concurrent writers) - the paper
// cites that result as one of the SCC's defining memory properties.
package mem

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Controller describes one DDR3 memory controller.
type Controller struct {
	// ID is the controller index (0..3 on the SCC).
	ID int
	// MemMHz is the controller clock (800 or 1066 on the SCC).
	MemMHz int
}

// Sustained-efficiency coefficients. DDR3 behind the SCC's mesh interface
// sustains only a fraction of the pin bandwidth; reads sustain a roughly
// constant fraction, while writes lose efficiency as writers are added
// (buffer conflicts at the controller; Melot et al.).
const (
	readEfficiency      = 0.35
	writeEfficiencyBase = 0.30
	writeDegradePerCore = 0.15
)

// PeakBytesPerSec is the theoretical pin bandwidth: a 64-bit DDR channel
// moving 8 bytes per controller clock.
func (c Controller) PeakBytesPerSec() float64 {
	if c.MemMHz <= 0 {
		panic(fmt.Sprintf("mem: controller %d has non-positive clock %d", c.ID, c.MemMHz))
	}
	return float64(c.MemMHz) * 1e6 * 8
}

// EffectiveReadBW returns the sustained aggregate read bandwidth with the
// given number of concurrently reading cores. Reads scale: the aggregate is
// flat in the reader count (each core is latency-bound, not the controller).
func (c Controller) EffectiveReadBW(readers int) float64 {
	if readers <= 0 {
		return 0
	}
	return readEfficiency * c.PeakBytesPerSec()
}

// EffectiveWriteBW returns the sustained aggregate write bandwidth with the
// given number of concurrently writing cores. Aggregate write throughput
// *decreases* as writers are added, matching the measurement the paper
// cites: w(k) = base / (1 + d·(k-1)).
func (c Controller) EffectiveWriteBW(writers int) float64 {
	if writers <= 0 {
		return 0
	}
	return writeEfficiencyBase * c.PeakBytesPerSec() / (1 + writeDegradePerCore*float64(writers-1))
}

// CoreDemand is one core's memory traffic over its kernel execution.
type CoreDemand struct {
	// ReadBytes and WriteBytes are the bytes moved from/to this
	// controller.
	ReadBytes, WriteBytes float64
	// TimeSec is the core's uncontended execution time; traffic is
	// spread uniformly over it.
	TimeSec float64
}

// queueingCoeff sets how strongly memory latency inflates with controller
// utilisation below saturation (queueing at the controller's request
// buffers). The slowdown curve is max(1 + queueingCoeff·min(u, 1), u):
// linear queueing delay up to saturation, pure bandwidth rationing beyond.
const queueingCoeff = 0.30

// Per-controller contention observability (internal/obs): the
// distribution of slowdown factors and utilisations each SCC memory
// controller hands out. Controllers outside the SCC's 0..3 range fold
// into one overflow series. Write-only: never read back by the model.
var (
	mcSlowdown = [5]*obs.Sample{
		obs.Default.Sample("mem.mc0.slowdown"),
		obs.Default.Sample("mem.mc1.slowdown"),
		obs.Default.Sample("mem.mc2.slowdown"),
		obs.Default.Sample("mem.mc3.slowdown"),
		obs.Default.Sample("mem.mc_other.slowdown"),
	}
	mcUtilization = [5]*obs.Sample{
		obs.Default.Sample("mem.mc0.utilization"),
		obs.Default.Sample("mem.mc1.utilization"),
		obs.Default.Sample("mem.mc2.utilization"),
		obs.Default.Sample("mem.mc3.utilization"),
		obs.Default.Sample("mem.mc_other.utilization"),
	}
)

// obsSeries maps a controller ID onto its metric slot.
func obsSeries(id int) int {
	if id >= 0 && id < 4 {
		return id
	}
	return 4
}

// Slowdown returns the factor (>= 1) by which memory-bound time stretches
// when the given per-core demands share controller c. Cores run
// concurrently over the window of the slowest core; their combined read and
// write rates yield a utilisation u of the controller's effective
// bandwidths. Below saturation requests queue (latency grows linearly in
// u); past saturation everything memory-bound stretches by u itself.
func Slowdown(c Controller, demands []CoreDemand) float64 {
	u := Utilization(c, demands)
	queued := 1 + queueingCoeff*math.Min(u, 1)
	s := math.Max(queued, u)
	i := obsSeries(c.ID)
	mcSlowdown[i].Observe(s)
	mcUtilization[i].Observe(u)
	return s
}

// Utilization returns the controller's demand/capacity ratio (can be < 1,
// and > 1 when oversubscribed).
func Utilization(c Controller, demands []CoreDemand) float64 {
	var window, readBytes, writeBytes float64
	readers, writers := 0, 0
	for _, d := range demands {
		if d.TimeSec > window {
			window = d.TimeSec
		}
		readBytes += d.ReadBytes
		writeBytes += d.WriteBytes
		if d.ReadBytes > 0 {
			readers++
		}
		if d.WriteBytes > 0 {
			writers++
		}
	}
	if window <= 0 {
		return 0
	}
	u := 0.0
	if readers > 0 {
		u += readBytes / window / c.EffectiveReadBW(readers)
	}
	if writers > 0 {
		u += writeBytes / window / c.EffectiveWriteBW(writers)
	}
	return u
}
