// Package repro's benchmark harness: one testing.B benchmark per paper
// table/figure (each iteration regenerates the artefact at the quick scale
// and reports its headline number as a custom metric), plus micro-benchmarks
// of the underlying kernels and simulator.
//
//	go test -bench=. -benchmem
//
// For paper-scale runs use cmd/sccsim with -scale 1.0 instead; benchmarks
// deliberately run the reduced configuration so the full suite stays under
// a few minutes.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/stats"
)

// runExperiment executes a registry experiment once and returns its tables.
func runExperiment(b *testing.B, id string) []*stats.Table {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(experiments.QuickConfig())
	if err != nil {
		b.Fatal(err)
	}
	return tables
}

// tableCell parses the numeric cell (row, col) of a table's CSV rendering.
func tableCell(b *testing.B, t *stats.Table, row, col int) float64 {
	b.Helper()
	lines := strings.Split(strings.TrimSpace(t.CSV()), "\n")
	fields := strings.Split(lines[row+1], ",")
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d): %v", row, col, err)
	}
	return v
}

// --- One benchmark per paper artefact ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runExperiment(b, "table1")
		b.ReportMetric(float64(tables[0].Rows()), "matrices")
	}
}

func BenchmarkFig1ChipOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig1")
	}
}

func BenchmarkFig2CSRExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig2")
	}
}

func BenchmarkFig4Mappings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig4")
	}
}

func BenchmarkFig3HopDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "fig3")[0]
		b.ReportMetric(tableCell(b, t, 0, 2), "MFLOPS_0hop")
		b.ReportMetric(100*(1-tableCell(b, t, 3, 3)), "degradation_3hop_%")
	}
}

func BenchmarkFig5Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "fig5")[0]
		best := 0.0
		for r := 0; r < t.Rows(); r++ {
			if sp := tableCell(b, t, r, 3); sp > best {
				best = sp
			}
		}
		b.ReportMetric(best, "best_mapping_speedup")
	}
}

func BenchmarkFig6WorkingSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runExperiment(b, "fig6")
		t24 := tables[1] // 24 cores
		maxM, minM := 0.0, 1e18
		for r := 0; r < t24.Rows(); r++ {
			m := tableCell(b, t24, r, 5)
			if m > maxM {
				maxM = m
			}
			if m < minM {
				minM = m
			}
		}
		b.ReportMetric(maxM, "max_MFLOPS_24c")
		b.ReportMetric(minM, "min_MFLOPS_24c")
	}
}

func BenchmarkFig7L2Disabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "fig7")[0]
		last := t.Rows() - 1
		b.ReportMetric(100*(1-tableCell(b, t, last, 3)), "degradation_48c_%")
	}
}

func BenchmarkFig8IrregularAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "fig8")[1] // 24 cores
		best := 0.0
		for r := 0; r < t.Rows(); r++ {
			if sp := tableCell(b, t, r, 4); sp > best {
				best = sp
			}
		}
		b.ReportMetric(best, "max_noX_speedup")
	}
}

func BenchmarkFig9Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runExperiment(b, "fig9")
		perf := tables[0]
		last := perf.Rows() - 1
		b.ReportMetric(tableCell(b, perf, last, 4), "conf1_speedup")
		power := tables[1]
		b.ReportMetric(tableCell(b, power, 1, 3), "conf1_watts")
	}
}

func BenchmarkFig10Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "fig10")[0]
		// M2050 is row 4; SCC conf0 row 5.
		b.ReportMetric(tableCell(b, t, 4, 2), "M2050_GFLOPS")
		b.ReportMetric(tableCell(b, t, 4, 4), "M2050_MFLOPS_per_W")
	}
}

func BenchmarkLatencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runExperiment(b, "latency")[0]
		b.ReportMetric(tableCell(b, t, 0, 1), "lat0_conf0_ns")
	}
}

func BenchmarkAblationFormats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-formats")
	}
}

func BenchmarkAblationReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-reorder")
	}
}

func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-partition")
	}
}

func BenchmarkAnalysisPowercap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "analysis-powercap")
	}
}

func BenchmarkAnalysisScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "analysis-scaling")
	}
}

func BenchmarkAnalysisDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "analysis-distributed")
	}
}

func BenchmarkAnalysisLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "analysis-locality")
	}
}

func BenchmarkAblationCacheBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-cacheblock")
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-prefetch")
	}
}

func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation-warmup")
	}
}

// --- Engine benchmarks: serial reference vs host-parallel ---

// benchEngine times one full fig9 sweep per iteration and reports the
// engine's headline throughput: simulated GFLOP/s (2*nnz of useful kernel
// work per simulated Result) and matrices/s. parallelism 1 is the serial
// reference engine with memoisation disabled - the seed behaviour.
func benchEngine(b *testing.B, parallelism int) {
	b.Helper()
	e, ok := experiments.ByID("fig9")
	if !ok {
		b.Fatal("fig9 not registered")
	}
	cfg := experiments.QuickConfig()
	cfg.Parallelism = parallelism
	if parallelism == 1 {
		cfg.Sequential = true
		cfg.MatrixCache = sparse.NewMatrixCache(0)
	} else {
		cfg.MatrixCache = sparse.NewMatrixCache(experiments.DefaultMatrixCacheBytes)
	}
	flops0 := sim.SimulatedFLOPs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		gflop := float64(sim.SimulatedFLOPs()-flops0) / 1e9
		b.ReportMetric(gflop/sec, "sim_GFLOP/s")
		b.ReportMetric(float64(cfg.MatrixCount()*b.N)/sec, "matrices/s")
	}
}

func BenchmarkEngineFig9Serial(b *testing.B)   { benchEngine(b, 1) }
func BenchmarkEngineFig9Parallel(b *testing.B) { benchEngine(b, 0) }

// --- Micro-benchmarks of the substrates ---

var benchMatrix = sparse.Generate(sparse.Gen{
	Name: "bench", Class: sparse.PatternStencil3D, N: 50000, NNZTarget: 1000000, Seed: 1,
})

func BenchmarkKernelSequentialCSR(b *testing.B) {
	a := benchMatrix
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
	b.ReportMetric(2*float64(a.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e6, "host_MFLOPS")
}

func BenchmarkKernelParallelCSR(b *testing.B) {
	a := benchMatrix
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spmv.Parallel(a, y, x, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorSingleCore(b *testing.B) {
	m := sim.NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "s", Class: sparse.PatternBanded, N: 20000, NNZTarget: 200000, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.Mapping{0}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.NNZ()), "nnz_simulated")
}

func BenchmarkSimulator48Cores(b *testing.B) {
	m := sim.NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "s", Class: sparse.PatternStencil3D, N: 30000, NNZTarget: 600000, Seed: 3})
	mapping := scc.DistanceReductionMapping(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheHierarchyAccess(b *testing.B) {
	h := cache.NewSCCHierarchy(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64)%(1<<22), i%7 == 0)
	}
}

func BenchmarkCGSolve(b *testing.B) {
	a := sparse.Laplacian2D(64)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spmv.CG(a, rhs, 1e-8, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRCMReordering(b *testing.B) {
	a := sparse.Generate(sparse.Gen{Name: "r", Class: sparse.PatternRandom, N: 5000, NNZTarget: 50000, Seed: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.RCM(a)
	}
}

func BenchmarkTestbedGeneration(b *testing.B) {
	e, _ := sparse.TestbedEntryByName("sme3Dc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.GenerateScaled(0.1)
	}
}
