# Standard-library-only Go repo: every target is a thin wrapper over the
# go tool so CI and humans run the same commands.

GO ?= go

.PHONY: all build check test race bench perf metrics-smoke clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: vet plus the full test suite.
check:
	$(GO) vet ./...
	$(GO) test ./...

test:
	$(GO) test ./...

# race runs the race detector over the packages with host concurrency:
# the parallel simulation engine, the experiment pipelines, and the
# goroutine-backed RCCE runtime and kernels.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/sim ./internal/experiments ./internal/rcce ./internal/spmv

bench:
	$(GO) test -bench=. -benchmem

# perf times the serial vs parallel engine on a full fig9 sweep and writes
# the BENCH_fig9.json record.
perf:
	$(GO) run ./cmd/sccsim -exp bench -benchexp fig9

# metrics-smoke proves the observability layer end to end: a small run
# with -metrics must emit parseable JSON with nonzero engine counters
# (UE walks, cells, cache traffic, controller contention).
metrics-smoke:
	$(GO) run ./cmd/sccsim -exp fig3 -scale 0.05 -metrics /tmp/m.json > /dev/null
	$(GO) run ./cmd/metricscheck /tmp/m.json

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json cpu.pprof mem.pprof
