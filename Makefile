# Standard-library-only Go repo: every target is a thin wrapper over the
# go tool so CI and humans run the same commands.

GO ?= go

.PHONY: all build check test race chaos bench bench-smoke des-smoke perf metrics-smoke serve-smoke trace-smoke sccvet sccvet-json fmt-check ci clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: formatting, go vet, the repo's own static
# analyzers (cmd/sccvet, all ten: the v1 determinism/concurrency/geometry
# suite plus the v2 flow-aware service-era suite), and the full test
# suite. The tree must be sccvet-clean: every surviving suppression
# carries a "//sccvet:allow <analyzer> <reason>" directive AND suppresses
# something (stale directives are findings).
check: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/sccvet ./...
	$(GO) test ./...

# sccvet runs only the custom invariant analyzers (determinism,
# concurrency, cache geometry, atomic consistency, result aliasing, hash
# coverage, ctx propagation, error discard, counter drift,
# lock-across-blocking).
sccvet:
	$(GO) run ./cmd/sccvet ./...

# sccvet-json records the machine-readable findings report
# (schema sccvet-findings/1); ci archives it next to the test logs.
sccvet-json:
	$(GO) run ./cmd/sccvet -json ./... > /tmp/sccvet.json || \
		{ cat /tmp/sccvet.json; exit 1; }
	@echo "sccvet findings report written to /tmp/sccvet.json"

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race runs the race detector over the packages with host concurrency:
# the parallel simulation engine, the experiment pipelines, and the
# goroutine-backed RCCE runtime and kernels. The experiments suite runs
# right at go test's default 10-minute limit under the race detector on
# a single-CPU host, so the timeout is raised explicitly.
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./internal/sim ./internal/experiments ./internal/rcce ./internal/spmv ./internal/serve ./internal/lint

# chaos runs the fault-injection suite (internal/fault plans driven
# through the RCCE watchdog and the experiment engine's error isolation)
# under the race detector: deadlock detection, dropped/delayed messages,
# failed ranks, matrix/cell faults and cancellation paths.
chaos:
	$(GO) test -race -timeout 10m -run 'Chaos' ./internal/rcce ./internal/experiments ./internal/serve
	$(GO) test -race -timeout 10m ./internal/fault ./internal/obs

# ci is the full pre-merge pipeline: the check gate, the recorded sccvet
# findings report, the race detector over the host-concurrent packages,
# the chaos suite, the bench smoke (which exercises all three engine legs
# end to end), the DES smoke (which proves the goroutine and virtual-time
# RCCE backends render bit-identical tables), the daemon smoke (which
# exercises the job API and result cache over real HTTP), and the
# telemetry smoke (Prometheus exposition, trace export and the flight
# recorder's post-mortem path).
ci: check sccvet-json race chaos bench-smoke des-smoke serve-smoke trace-smoke

bench:
	$(GO) test -bench=. -benchmem

# bench-smoke drives the three-leg bench harness (serial reference,
# parallel exact, analytic pricing) on a tiny geometry sweep and writes
# BENCH_ablation-l2geom.json to /tmp. It proves the trace-once/price-many
# fast path end to end without taking real-bench time.
bench-smoke:
	$(GO) run ./cmd/sccsim -exp bench -benchexp ablation-l2geom -scale 0.05 -stride 16 -outdir /tmp

# des-smoke runs the executable rcce-scaling sweep once per RCCE backend
# (the goroutine oracle and the virtual-time discrete-event scheduler) on
# a tiny matrix and diffs the rendered tables byte for byte. Any engine
# divergence - a reordered message, a dropped counter, a nondeterministic
# checksum - fails the diff.
des-smoke:
	@rm -rf /tmp/des-smoke && mkdir -p /tmp/des-smoke/goroutine /tmp/des-smoke/des
	$(GO) run ./cmd/sccsim -exp rcce-scaling -scale 0.05 -max 1 -engine goroutine -outdir /tmp/des-smoke/goroutine > /dev/null
	$(GO) run ./cmd/sccsim -exp rcce-scaling -scale 0.05 -max 1 -engine des -outdir /tmp/des-smoke/des > /dev/null
	cmp /tmp/des-smoke/goroutine/rcce-scaling.txt /tmp/des-smoke/des/rcce-scaling.txt
	cmp /tmp/des-smoke/goroutine/rcce-scaling.csv /tmp/des-smoke/des/rcce-scaling.csv
	@echo "des-smoke: goroutine and des tables are bit-identical"

# perf times the serial vs parallel engine on a full fig9 sweep and writes
# the BENCH_fig9.json record.
perf:
	$(GO) run ./cmd/sccsim -exp bench -benchexp fig9

# serve-smoke proves the sccsimd job daemon end to end: an in-process
# daemon on a loopback port runs a tiny job twice over real HTTP and
# asserts the second submission is served from the content-addressed
# result cache with byte-identical tables.
serve-smoke:
	$(GO) run ./cmd/sccsimd -selfcheck

# metrics-smoke proves the observability layer end to end: a small run
# with -metrics must emit parseable JSON with nonzero engine counters
# (UE walks, cells, cache traffic, controller contention), histogram
# invariants intact, and a Prometheus exposition that lints against the
# same snapshot.
metrics-smoke:
	$(GO) run ./cmd/sccsim -exp fig3 -scale 0.05 -metrics /tmp/m.json -metrics-prom /tmp/m.prom > /dev/null
	$(GO) run ./cmd/metricscheck -prom /tmp/m.prom /tmp/m.json

# trace-smoke proves the telemetry surfaces end to end: a loopback
# daemon runs a tiny job, /metrics must lint as Prometheus text, the
# job's trace must lint as Chrome trace-event JSON, and a fault-wedged
# job must fail with its flight-recorder tail attached (the post-mortem
# path).
trace-smoke:
	$(GO) run ./cmd/sccsimd -telemetrycheck

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json cpu.pprof mem.pprof
