// Distributed SpMV: run y = A·x without shared memory - each unit of
// execution owns a block of x and halo-exchanges exactly the entries its
// rows need, over the RCCE runtime with non-blocking sends. Shows how the
// partitioner choice changes the communication volume.
//
//	go run ./examples/distributed [-ues 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/stats"
)

func main() {
	ues := flag.Int("ues", 8, "units of execution")
	flag.Parse()

	// A banded matrix whose row order was scrambled: the worst case for
	// naive contiguous partitioning.
	band := sparse.Generate(sparse.Gen{
		Name: "band", Class: sparse.PatternBanded, N: 6000, NNZTarget: 60000,
		Bandwidth: 40, Seed: 3,
	})
	a := sparse.ApplySymmetric(band, sparse.RandomPerm(band.Rows, 11))
	a.Name = "shuffled-band"
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.01)
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)

	fmt.Printf("%s: n=%d nnz=%d, %d UEs, distance-reduction mapping\n\n", a.Name, a.Rows, a.NNZ(), *ues)
	t := stats.NewTable("halo-exchange distributed SpMV", "partition", "x entries exchanged", "max peer degree", "messages", "verified", "est. exchange (µs)")
	for _, scheme := range []partition.Scheme{partition.SchemeByNNZ, partition.SchemeCyclic, partition.SchemeBFS} {
		parts, err := partition.Split(scheme, a, *ues)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := spmv.NewCommPlan(a, parts)
		if err != nil {
			log.Fatal(err)
		}
		r, err := spmv.DistRCCE(a, x, *ues, scheme, scc.DistanceReductionMapping(*ues))
		if err != nil {
			log.Fatal(err)
		}
		ok := "yes"
		for i := range want {
			if math.Abs(r.Y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				ok = "NO"
				break
			}
		}
		cost, err := spmv.ExchangeCost(plan, scc.DistanceReductionMapping(*ues), scc.Conf0)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(string(scheme), r.Volume, plan.MaxDegree(), int(r.Stats.Messages), ok,
			cost*1e6)
	}
	fmt.Println(t.String())
	fmt.Println("the BFS partitioner clusters graph-adjacent rows, shrinking the halo:")
	fmt.Println("less data on the mesh per SpMV, exactly what a multi-chip SCC would need.")
}
