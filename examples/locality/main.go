// Locality analysis: quantify the paper's Section IV-C story on a pair of
// matrices - the reuse-distance profile of the x-vector accesses predicts
// which matrices the no-x-miss kernel accelerates, and by how much an RCM
// reordering helps.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	// Three matrices with the same size and density but different column
	// structure: a narrow band (high locality), the same band destroyed
	// by a random symmetric permutation (structure recoverable by RCM),
	// and a truly random pattern (nothing to recover). n is chosen so x
	// (8n bytes = 940 KB) exceeds the 256 KB L2: locality, not capacity,
	// decides the hit ratios.
	const n = 120000
	banded := sparse.Generate(sparse.Gen{
		Name: "banded", Class: sparse.PatternBanded, N: n, NNZTarget: 15 * n,
		Bandwidth: 96, Seed: 1,
	})
	shuffled := sparse.ApplySymmetric(banded, sparse.RandomPerm(n, 7))
	shuffled.Name = "shuffled-band"
	scattered := sparse.Generate(sparse.Gen{
		Name: "scattered", Class: sparse.PatternRandom, N: n, NNZTarget: 15 * n, Seed: 1,
	})
	machine := sim.NewMachine(scc.Conf0)
	mapping := scc.DistanceReductionMapping(24)
	l2Lines := int64(256 << 10 / scc.CacheLineBytes)

	t := stats.NewTable("x-access locality vs performance (24 cores, conf0)",
		"matrix", "x hit@L2 (predicted)", "MFLOPS", "no-x speedup", "RCM speedup")
	for _, a := range []*sparse.CSR{banded, shuffled, scattered} {
		prof := trace.XLineTrace(a, scc.CacheLineBytes)
		std, err := machine.RunSpMV(a, nil, sim.Options{Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		nox, err := machine.RunSpMV(a, nil, sim.Options{Mapping: mapping, Variant: sim.KernelNoXMiss})
		if err != nil {
			log.Fatal(err)
		}
		rcm := sparse.ApplySymmetric(a, sparse.RCM(a))
		rr, err := machine.RunSpMV(rcm, nil, sim.Options{Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(a.Name,
			prof.HitRatioAtCapacity(l2Lines),
			std.MFLOPS,
			nox.MFLOPS/std.MFLOPS,
			rr.MFLOPS/std.MFLOPS)
	}
	fmt.Println(t.String())
	fmt.Println("reading: low predicted x hit ratio -> large no-x speedup (the paper's")
	fmt.Println("Figure 8), and a bandwidth-reducing RCM permutation recovers much of it.")
}
