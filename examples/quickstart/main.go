// Quickstart: build a sparse matrix, run the paper's CSR SpMV on the
// simulated SCC, and verify the numerics against the sequential kernel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
)

func main() {
	// 1. A sparse matrix: the 5-point Laplacian on a 200x200 grid
	//    (n = 40,000, the classic SpMV workload).
	a := sparse.Laplacian2D(200)
	fmt.Printf("matrix %s: n=%d nnz=%d ws=%.1f MB\n", a.Name, a.Rows, a.NNZ(), a.WorkingSetMB())

	// 2. An input vector.
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.01)
	}

	// 3. Simulate y = A*x on the SCC's default configuration with 24
	//    units of execution placed by the paper's distance-reduction
	//    mapping.
	machine := sim.NewMachine(scc.Conf0)
	result, err := machine.RunSpMV(a, x, sim.Options{
		Mapping: scc.DistanceReductionMapping(24),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("24 cores @ %s: %.1f MFLOPS in %.3f ms (%.1f W, %.1f MFLOPS/W)\n",
		scc.Conf0, result.MFLOPS, result.TimeSec*1e3, result.PowerWatts, result.MFLOPSPerWatt)

	// 4. The simulator computes the real product; check it.
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(result.Y[i]-want[i]) > 1e-9 {
			log.Fatalf("verification failed at row %d", i)
		}
	}
	fmt.Println("numerics verified against the sequential kernel")

	// 5. The same run on the fastest clock configuration.
	fast := sim.NewMachine(scc.Conf1)
	r1, err := fast.RunSpMV(a, x, sim.Options{Mapping: scc.DistanceReductionMapping(24)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("24 cores @ %s: %.1f MFLOPS (%.2fx speedup)\n",
		scc.Conf1, r1.MFLOPS, r1.MFLOPS/result.MFLOPS)
}
