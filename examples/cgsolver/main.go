// CG solver: the workload the paper's introduction motivates - an
// SpMV-dominated iterative solver. Solves a 2D Poisson problem with
// conjugate gradients, runs the dominant kernel on the RCCE message-passing
// runtime (the paper's programming model), and prices the whole solve on
// the simulated SCC.
//
//	go run ./examples/cgsolver [-grid 64] [-cores 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	grid := flag.Int("grid", 64, "Poisson grid side (n = side^2)")
	cores := flag.Int("cores", 24, "units of execution for the parallel SpMV")
	flag.Parse()

	a := sparse.Laplacian2D(*grid)
	n := a.Rows
	fmt.Printf("Poisson %dx%d: n=%d nnz=%d ws=%.2f MB\n", *grid, *grid, n, a.NNZ(), a.WorkingSetMB())

	// Manufactured solution: u(i) = sin(...), b = A*u.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.01)
	}
	b := make([]float64, n)
	a.MulVec(b, want)

	// 1. Solve with CG (sequential SpMV inside).
	res, err := spmv.CG(a, b, 1e-10, 10*n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG converged=%v in %d iterations, residual %.2e\n", res.Converged, res.Iterations, res.Residual)
	maxErr := 0.0
	for i := range want {
		if e := math.Abs(res.X[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max error vs manufactured solution: %.2e\n\n", maxErr)

	// 2. The dominant kernel on the RCCE runtime (functional check).
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	rr, err := spmv.RCCE(a, x, *cores, scc.DistanceReductionMapping(*cores))
	if err != nil {
		log.Fatal(err)
	}
	seq := make([]float64, n)
	a.MulVec(seq, x)
	for i := range seq {
		if math.Abs(rr.Y[i]-seq[i]) > 1e-9 {
			log.Fatalf("RCCE SpMV mismatch at row %d", i)
		}
	}
	fmt.Printf("RCCE SpMV on %d UEs verified; %d messages, %d bytes, %d barriers\n\n",
		*cores, rr.Stats.Messages, rr.Stats.Bytes, rr.Stats.Barriers)

	// 3. Price the whole solve on the simulated SCC: CG is one SpMV plus
	//    ~5 vector ops per iteration; SpMV dominates at ~5 flops/nnz vs
	//    10n flops of AXPYs. Simulate the SpMV and scale.
	machine := sim.NewMachine(scc.Conf0)
	one, err := machine.RunSpMV(a, x, sim.Options{Mapping: scc.DistanceReductionMapping(*cores)})
	if err != nil {
		log.Fatal(err)
	}
	spmvTime := one.TimeSec * float64(res.Iterations)
	fmt.Printf("simulated SCC cost (%d cores, conf0): %.3f ms per SpMV, %.1f ms for the %d-iteration solve (SpMV only)\n",
		*cores, one.TimeSec*1e3, spmvTime*1e3, res.Iterations)
	fmt.Printf("kernel throughput: %.1f MFLOPS at %.1f W\n", one.MFLOPS, one.PowerWatts)
}
