// Mapping study: reproduce the Section IV-A experiment on one matrix -
// how the placement of units of execution relative to the memory
// controllers changes SpMV performance.
//
//	go run ./examples/mapping [-matrix sparsine] [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	name := flag.String("matrix", "sparsine", "testbed matrix name")
	scale := flag.Float64("scale", 0.25, "testbed scale in (0, 1]")
	flag.Parse()

	entry, ok := sparse.TestbedEntryByName(*name)
	if !ok {
		log.Fatalf("unknown testbed matrix %q", *name)
	}
	a := entry.GenerateScaled(*scale)
	fmt.Printf("%s: n=%d nnz=%d ws=%.1f MB\n\n", a.Name, a.Rows, a.NNZ(), a.WorkingSetMB())
	machine := sim.NewMachine(scc.Conf0)

	// Part 1 (Figure 3): a single UE at each hop distance.
	single := stats.NewTable("single core by hop distance", "hops", "MFLOPS")
	for h := 0; h < 4; h++ {
		core := scc.CoresWithHops(h)[0]
		r, err := machine.RunSpMV(a, nil, sim.Options{Mapping: scc.Mapping{core}})
		if err != nil {
			log.Fatal(err)
		}
		single.AddRow(h, r.MFLOPS)
	}
	fmt.Println(single.String())

	// Part 2 (Figure 5): standard vs distance-reduction vs random across
	// core counts.
	t := stats.NewTable("mapping policies (MFLOPS)",
		"cores", "standard", "distance", "random", "dist/std")
	for _, n := range []int{2, 4, 8, 16, 24, 32, 48} {
		row := make(map[scc.MappingPolicy]float64)
		for _, p := range []scc.MappingPolicy{scc.MapStandard, scc.MapDistanceReduction, scc.MapRandom} {
			m, err := scc.Map(p, n, 42)
			if err != nil {
				log.Fatal(err)
			}
			r, err := machine.RunSpMV(a, nil, sim.Options{Mapping: m})
			if err != nil {
				log.Fatal(err)
			}
			row[p] = r.MFLOPS
		}
		t.AddRow(n, row[scc.MapStandard], row[scc.MapDistanceReduction], row[scc.MapRandom],
			row[scc.MapDistanceReduction]/row[scc.MapStandard])
	}
	fmt.Println(t.String())
	fmt.Println("the distance-reduction mapping places ranks on the cores closest to")
	fmt.Println("their memory controller; the paper measures up to 1.23x from this.")
	fmt.Println()
	fmt.Println("distance-reduction placement of 8 ranks (cf. the paper's Figure 4(b)):")
	fmt.Print(scc.RenderMapping(scc.DistanceReductionMapping(8)))
}
