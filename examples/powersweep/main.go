// Power sweep: the Section IV-D experiment generalised - sweep the tile
// clock from 100 to 800 MHz (with both mesh/memory options) and chart the
// performance/power/efficiency trade-off, including the paper's three named
// configurations.
//
//	go run ./examples/powersweep [-matrix pct20stif] [-scale 0.25] [-cores 48]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	name := flag.String("matrix", "pct20stif", "testbed matrix name")
	scale := flag.Float64("scale", 0.25, "testbed scale in (0, 1]")
	cores := flag.Int("cores", 48, "units of execution")
	flag.Parse()

	entry, ok := sparse.TestbedEntryByName(*name)
	if !ok {
		log.Fatalf("unknown testbed matrix %q", *name)
	}
	a := entry.GenerateScaled(*scale)
	mapping := scc.DistanceReductionMapping(*cores)
	fmt.Printf("%s: n=%d nnz=%d ws=%.1f MB, %d cores\n\n", a.Name, a.Rows, a.NNZ(), a.WorkingSetMB(), *cores)

	run := func(cc scc.ClockConfig) (mflops, watts float64) {
		m := sim.NewMachine(cc)
		r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		return r.MFLOPS, r.PowerWatts
	}

	// The paper's three configurations.
	named := stats.NewTable("paper configurations", "config", "clocks", "MFLOPS", "W", "MFLOPS/W")
	for _, c := range []struct {
		n  string
		cc scc.ClockConfig
	}{{"conf0", scc.Conf0}, {"conf1", scc.Conf1}, {"conf2", scc.Conf2}} {
		mf, w := run(c.cc)
		named.AddRow(c.n, c.cc.String(), mf, w, mf/w)
	}
	fmt.Println(named.String())

	// A full tile-clock sweep under both mesh/memory pairings.
	sweep := stats.NewTable("tile clock sweep", "core MHz",
		"MFLOPS (800/800)", "W", "MFLOPS/W",
		"MFLOPS (1600/1066)", "W ", "MFLOPS/W ")
	for _, mhz := range []int{100, 200, 320, 400, 533, 640, 800} {
		slow, ws := run(scc.ClockConfig{CoreMHz: mhz, MeshMHz: 800, MemMHz: 800})
		fast, wf := run(scc.ClockConfig{CoreMHz: mhz, MeshMHz: 1600, MemMHz: 1066})
		sweep.AddRow(mhz, slow, ws, slow/ws, fast, wf, fast/wf)
	}
	sweep.AddNote("the best MFLOPS/W sits at mid clocks for memory-bound matrices")
	fmt.Println(sweep.String())

	// Heterogeneous domains: run half the tiles slow, half fast - the
	// per-tile frequency control only the SCC offers.
	m := sim.NewMachine(scc.Conf0)
	for t := 0; t < scc.NumTiles/2; t++ {
		m.Domains.TileMHz[t] = 800
	}
	r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous (half tiles 800 MHz, half 533): %.1f MFLOPS at %.1f W\n",
		r.MFLOPS, r.PowerWatts)
	fmt.Println("note: a barrier-terminated kernel is dragged by the slow tiles while paying for the fast ones")
}
