// Command metricscheck validates an engine-metrics snapshot written by
// `sccsim -metrics out.json` (the `make metrics-smoke` gate): the file
// must parse as the sccsim-metrics schema and the core engine counters
// must be nonzero, proving the observability layer actually saw UE
// walks, experiment cells, matrix-cache traffic and memory-controller
// contention.
//
// Usage:
//
//	metricscheck file.json [counter ...]
//
// With no counter arguments the default engine set is required.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

// defaultRequired is the counter set every engine run must produce.
var defaultRequired = []string{
	"sim.flops.simulated",
	"sim.sweep.runs",
	"sim.ue_walk.tasks",
	"experiments.cell.tasks",
	"experiments.matrix.visits",
	"sparse.matrix_cache.misses",
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck file.json [counter ...]")
		os.Exit(2)
	}
	path := os.Args[1]
	required := os.Args[2:]
	if len(required) == 0 {
		required = defaultRequired
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var snap obs.SnapshotData
	if err := json.Unmarshal(blob, &snap); err != nil {
		fail("%s: not valid metrics JSON: %v", path, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		fail("%s: schema %q, want %q", path, snap.Schema, obs.SnapshotSchema)
	}

	var missing []string
	for _, name := range required {
		if snap.Counters[name] == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("%s: required counters zero or absent: %s", path, strings.Join(missing, ", "))
	}

	// The engine must also have sampled pool occupancy and at least one
	// memory controller's contention distribution.
	if st := snap.Samples["sim.ue_walk.occupancy"]; st.Count == 0 {
		fail("%s: sim.ue_walk.occupancy never sampled", path)
	}
	contended := false
	for name, st := range snap.Samples {
		if strings.HasPrefix(name, "mem.mc") && strings.HasSuffix(name, ".slowdown") && st.Count > 0 {
			contended = true
			break
		}
	}
	if !contended {
		fail("%s: no memory-controller slowdown samples recorded", path)
	}

	fmt.Printf("metricscheck: %s ok (%d counters, %d samples, %.1fs wall)\n",
		path, len(snap.Counters), len(snap.Samples), snap.WallSeconds)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
	os.Exit(1)
}
