// Command metricscheck validates an engine-metrics snapshot written by
// `sccsim -metrics out.json` (the `make metrics-smoke` gate): the file
// must parse as the sccsim-metrics schema and the core engine counters
// must be nonzero, proving the observability layer actually saw UE
// walks, experiment cells, matrix-cache traffic and memory-controller
// contention.
//
// Usage:
//
//	metricscheck file.json [counter ...]
//
// With no counter arguments the default engine set
// (obs.RequiredEngineCounters) is required. Every metric name in the
// snapshot must also be declared in the obs schema table - the same
// table sccvet's counter-drift analyzer enforces at registration sites -
// so a name cannot drift past one gate and into the other.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck file.json [counter ...]")
		os.Exit(2)
	}
	path := os.Args[1]
	required := os.Args[2:]
	if len(required) == 0 {
		required = obs.RequiredEngineCounters()
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var snap obs.SnapshotData
	if err := json.Unmarshal(blob, &snap); err != nil {
		fail("%s: not valid metrics JSON: %v", path, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		fail("%s: schema %q, want %q", path, snap.Schema, obs.SnapshotSchema)
	}

	var missing []string
	for _, name := range required {
		if snap.Counters[name] == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("%s: required counters zero or absent: %s", path, strings.Join(missing, ", "))
	}

	// Every name in the snapshot must be declared in the schema table; an
	// unknown name means a registration site escaped the counter-drift vet
	// gate (or the table is stale - either way the namespace has forked).
	var undeclared []string
	for name := range snap.Counters {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (counter)")
		}
	}
	for name := range snap.Gauges {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (gauge)")
		}
	}
	for name := range snap.Timers {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (timer)")
		}
	}
	for name := range snap.Samples {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (sample)")
		}
	}
	if len(undeclared) > 0 {
		sort.Strings(undeclared)
		fail("%s: metric names absent from the declared schema (internal/obs/names.go): %s",
			path, strings.Join(undeclared, ", "))
	}

	// The engine must also have sampled pool occupancy and at least one
	// memory controller's contention distribution.
	if st := snap.Samples["sim.ue_walk.occupancy"]; st.Count == 0 {
		fail("%s: sim.ue_walk.occupancy never sampled", path)
	}
	contended := false
	for name, st := range snap.Samples {
		if strings.HasPrefix(name, "mem.mc") && strings.HasSuffix(name, ".slowdown") && st.Count > 0 {
			contended = true
			break
		}
	}
	if !contended {
		fail("%s: no memory-controller slowdown samples recorded", path)
	}

	fmt.Printf("metricscheck: %s ok (%d counters, %d samples, %.1fs wall)\n",
		path, len(snap.Counters), len(snap.Samples), snap.WallSeconds)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
	os.Exit(1)
}
