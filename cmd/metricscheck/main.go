// Command metricscheck validates an engine-metrics snapshot written by
// `sccsim -metrics out.json` (the `make metrics-smoke` gate): the file
// must parse as the sccsim-metrics schema and the core engine counters
// must be nonzero, proving the observability layer actually saw UE
// walks, experiment cells, matrix-cache traffic and memory-controller
// contention.
//
// Usage:
//
//	metricscheck [-prom file.prom] file.json [counter ...]
//
// With no counter arguments the default engine set
// (obs.RequiredEngineCounters) is required. Every metric name in the
// snapshot must also be declared in the obs schema table - the same
// table sccvet's counter-drift analyzer enforces at registration sites -
// so a name cannot drift past one gate and into the other. Histograms
// are checked structurally: the global bucket layout, the
// count == sum(buckets) invariant, and quantile monotonicity.
//
// -prom additionally validates a Prometheus text exposition written by
// `sccsim -metrics-prom file.prom` (or scraped from sccsimd's /metrics):
// the file must lint as exposition format 0.0.4 and every family must
// derive from a name in the JSON snapshot via the shared PromName
// mangling - the JSON and Prometheus faces of one registry cannot
// drift apart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	promPath := flag.String("prom", "", "also validate this Prometheus text exposition against the JSON snapshot")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-prom file.prom] file.json [counter ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	required := flag.Args()[1:]
	if len(required) == 0 {
		required = obs.RequiredEngineCounters()
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var snap obs.SnapshotData
	if err := json.Unmarshal(blob, &snap); err != nil {
		fail("%s: not valid metrics JSON: %v", path, err)
	}
	if snap.Schema != obs.SnapshotSchema {
		fail("%s: schema %q, want %q", path, snap.Schema, obs.SnapshotSchema)
	}

	var missing []string
	for _, name := range required {
		if snap.Counters[name] == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fail("%s: required counters zero or absent: %s", path, strings.Join(missing, ", "))
	}

	// Every name in the snapshot must be declared in the schema table; an
	// unknown name means a registration site escaped the counter-drift vet
	// gate (or the table is stale - either way the namespace has forked).
	var undeclared []string
	for name := range snap.Counters {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (counter)")
		}
	}
	for name := range snap.Gauges {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (gauge)")
		}
	}
	for name := range snap.Timers {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (timer)")
		}
	}
	for name := range snap.Samples {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (sample)")
		}
	}
	for name := range snap.Histograms {
		if !obs.KnownMetricName(name) {
			undeclared = append(undeclared, name+" (histogram)")
		}
	}
	if len(undeclared) > 0 {
		sort.Strings(undeclared)
		fail("%s: metric names absent from the declared schema (internal/obs/names.go): %s",
			path, strings.Join(undeclared, ", "))
	}

	checkHistograms(path, snap.Histograms)

	// The engine must also have sampled pool occupancy and at least one
	// memory controller's contention distribution.
	if st := snap.Samples["sim.ue_walk.occupancy"]; st.Count == 0 {
		fail("%s: sim.ue_walk.occupancy never sampled", path)
	}
	contended := false
	for name, st := range snap.Samples {
		if strings.HasPrefix(name, "mem.mc") && strings.HasSuffix(name, ".slowdown") && st.Count > 0 {
			contended = true
			break
		}
	}
	if !contended {
		fail("%s: no memory-controller slowdown samples recorded", path)
	}

	if *promPath != "" {
		checkProm(*promPath, &snap)
	}

	fmt.Printf("metricscheck: %s ok (%d counters, %d samples, %d histograms, %.1fs wall)\n",
		path, len(snap.Counters), len(snap.Samples), len(snap.Histograms), snap.WallSeconds)
}

// checkHistograms enforces the structural invariants every snapshot
// histogram must satisfy: the process-global bucket layout, the
// count-equals-bucket-sum identity (the snapshot path derives Count
// from the buckets precisely so this cannot tear), non-negative
// buckets, and monotone quantiles.
func checkHistograms(path string, hists map[string]obs.HistStats) {
	bounds := obs.HistBounds()
	for name, st := range hists {
		if len(st.Buckets) != len(bounds)+1 {
			fail("%s: histogram %s has %d buckets, want %d (the global layout plus overflow)",
				path, name, len(st.Buckets), len(bounds)+1)
		}
		var total int64
		for i, b := range st.Buckets {
			if b < 0 {
				fail("%s: histogram %s bucket %d is negative (%d)", path, name, i, b)
			}
			total += b
		}
		if total != st.Count {
			fail("%s: histogram %s count %d != bucket sum %d", path, name, st.Count, total)
		}
		if st.Count > 0 && (st.P50 > st.P95 || st.P95 > st.P99) {
			fail("%s: histogram %s quantiles not monotone (p50 %g, p95 %g, p99 %g)",
				path, name, st.P50, st.P95, st.P99)
		}
		if st.Count > 0 && st.Sum < 0 {
			fail("%s: histogram %s has negative sum %g (observations clamp at zero)", path, name, st.Sum)
		}
	}
}

// checkProm lints a Prometheus exposition and pins every family to the
// JSON snapshot: a family is known exactly when it derives from a
// snapshot name through the shared PromName mangling (plus the
// per-kind suffix families the writer emits). A family that cannot be
// derived means the two faces of the registry have drifted.
func checkProm(path string, snap *obs.SnapshotData) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	known := map[string]bool{}
	for name := range snap.Counters {
		known[obs.PromName(name)+"_total"] = true
	}
	for name := range snap.Gauges {
		known[obs.PromName(name)] = true
	}
	for _, m := range []map[string]obs.SampleStats{snap.Timers, snap.Samples} {
		for name := range m {
			fam := obs.PromName(name)
			known[fam] = true
			known[fam+"_min"] = true
			known[fam+"_max"] = true
		}
	}
	for name := range snap.Histograms {
		known[obs.PromName(name)] = true
	}
	if err := obs.LintPrometheus(blob, func(fam string) bool { return known[fam] }); err != nil {
		fail("%s: %v", path, err)
	}
	fmt.Printf("metricscheck: %s ok (prometheus exposition lints against the snapshot)\n", path)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
	os.Exit(1)
}
