// Command scctune autotunes the SpMV configuration for one matrix on the
// simulated SCC and prints the paper-style optimisation guidelines.
//
//	scctune -matrix av41092 -scale 0.25 -cores 24
//	scctune -mm mymatrix.mtx -cores 48 -config conf1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scc"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/tune"
)

func main() {
	var (
		matrix  = flag.String("matrix", "av41092", "testbed matrix name")
		mmPath  = flag.String("mm", "", "load a MatrixMarket file instead")
		scale   = flag.Float64("scale", 0.25, "testbed scale factor in (0, 1]")
		cores   = flag.Int("cores", 24, "units of execution")
		cfgName = flag.String("config", "conf0", "clock configuration")
		budget  = flag.Float64("budget", 0, "optional power budget in watts: also report the best clock configuration under it")
	)
	flag.Parse()

	var a *sparse.CSR
	if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			fail(err)
		}
		var rerr error
		a, rerr = sparse.ReadMatrixMarket(f)
		f.Close()
		if rerr != nil {
			fail(rerr)
		}
	} else {
		e, ok := sparse.TestbedEntryByName(*matrix)
		if !ok {
			fail(fmt.Errorf("unknown testbed matrix %q", *matrix))
		}
		a = e.GenerateScaled(*scale)
	}
	cc, ok := scc.NamedConfigs()[*cfgName]
	if !ok {
		fail(fmt.Errorf("unknown configuration %q", *cfgName))
	}

	r, err := tune.Tune(a, *cores, cc)
	if err != nil {
		fail(err)
	}
	t := stats.NewTable(
		fmt.Sprintf("autotune %s (n=%d nnz=%d) at %d cores, %s", a.Name, a.Rows, a.NNZ(), *cores, cc),
		"format", "partition", "MFLOPS", "note",
	)
	for _, c := range r.Candidates {
		t.AddRow(c.Format, string(c.Scheme), c.MFLOPS, c.Note)
	}
	fmt.Println(t.String())
	fmt.Println("guidelines:")
	for _, g := range r.Guidelines() {
		fmt.Println("  -", g)
	}

	if *budget > 0 {
		points, err := tune.SweepConfigs(a, *cores)
		if err != nil {
			fail(err)
		}
		best, err := tune.BestUnderBudget(points, *budget)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nunder %.1f W: run %s -> %.0f MFLOPS at %.1f W (%.1f MFLOPS/W)\n",
			*budget, best.Config, best.MFLOPS, best.Watts, best.EfficiencyMFLOPSPerWatt())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scctune:", err)
	os.Exit(1)
}
