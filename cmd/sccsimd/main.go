// Command sccsimd is the simulation-as-a-service daemon: it serves the
// experiment harness over an HTTP/JSON job API (internal/serve).
//
// Usage:
//
//	sccsimd [-addr 127.0.0.1:8077] [-workers N] [-queue 64]
//	        [-cachemb 1024] [-resultmb 256] [-deadline 15m]
//	sccsimd -selfcheck
//
// Clients POST job configurations to /api/v1/jobs, poll or stream
// progress, and fetch rendered tables when done. Determinism makes every
// result content-addressable: resubmitting an identical job is served
// bit-identically from the result cache without re-running, and
// duplicate submissions in flight coalesce onto one execution. See
// DESIGN.md section 10 and the README's "Serving" section for the API.
//
// -selfcheck starts an in-process daemon on a loopback port, runs a tiny
// job twice over real HTTP, asserts the second submission is a cache hit
// with byte-identical tables, and exits 0/1. It is the smoke test wired
// into `make serve-smoke`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8077", "listen address for the HTTP API")
		workers   = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "accepted-but-unstarted job bound; beyond it submissions get 503")
		cacheMB   = flag.Int64("cachemb", 1024, "shared generated-matrix cache budget in MiB")
		resultMB  = flag.Int64("resultmb", 256, "content-addressed result cache budget in MiB")
		deadline  = flag.Duration("deadline", 15*time.Minute, "default per-job execution deadline (jobs may set their own)")
		progress  = flag.Bool("progress", false, "print a periodic engine-metrics heartbeat to stderr")
		selfcheck = flag.Bool("selfcheck", false, "start on a loopback port, run a tiny job twice, assert the second is a cache hit, exit")
	)
	flag.Parse()

	cfg := serve.ServerConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		MatrixCacheBytes: *cacheMB << 20,
		ResultStoreBytes: *resultMB << 20,
	}

	if *selfcheck {
		if err := runSelfcheck(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sccsimd: selfcheck FAILED: %v\n", err)
			return 1
		}
		fmt.Println("sccsimd: selfcheck ok (second submission served from cache, bytes identical)")
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reporter *obs.Reporter
	if *progress {
		reporter = obs.NewReporter(obs.Default, os.Stderr, 5*time.Second)
		reporter.Start()
		defer reporter.Stop()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsimd: listen %s: %v\n", *addr, err)
		return 1
	}
	nworkers := cfg.Workers
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "sccsimd: serving on http://%s (workers %d, queue %d)\n",
		l.Addr(), nworkers, cfg.QueueDepth)

	s := serve.NewServer(cfg)
	if err := s.Run(ctx, l); err != nil {
		fmt.Fprintf(os.Stderr, "sccsimd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "sccsimd: shut down")
	return 0
}

// selfcheckPool fans the in-process daemon and its client out without
// bare goroutines (the repo-wide sccvet rule).
var selfcheckPool = obs.Default.Pool("sccsimd.selfcheck")

// runSelfcheck is the end-to-end smoke: a real daemon on a loopback
// port, a real HTTP client, a tiny deterministic job run twice. The
// second submission must be a cache hit and the fetched tables must be
// byte-identical to the first run's.
func runSelfcheck(cfg serve.ServerConfig) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s := serve.NewServer(cfg)
	var clientErr error
	selfcheckPool.ForEach(2, 2, func(i int) {
		if i == 0 {
			s.Run(ctx, l)
			return
		}
		defer cancel() // client done (or failed): shut the daemon down
		clientErr = selfcheckClient(ctx, base)
	})
	return clientErr
}

// selfcheckClient drives the submit -> wait -> fetch -> resubmit flow.
func selfcheckClient(ctx context.Context, base string) error {
	// fig3 at 5% scale with a wide stride is the cheapest full pipeline:
	// two generated matrices, a few seconds of simulation.
	job := []byte(`{"experiment": "fig3", "scale": 0.05, "stride": 16}`)

	first, err := submitJob(ctx, base, job)
	if err != nil {
		return err
	}
	if first.CacheHit {
		return fmt.Errorf("first submission reported a cache hit on a fresh daemon")
	}
	if err := waitDone(ctx, base, first.ID); err != nil {
		return err
	}
	text1, err := fetchBody(ctx, base+"/api/v1/jobs/"+first.ID+"/result")
	if err != nil {
		return err
	}
	if len(text1) == 0 {
		return fmt.Errorf("first run produced empty tables")
	}

	second, err := submitJob(ctx, base, job)
	if err != nil {
		return err
	}
	if !second.CacheHit {
		return fmt.Errorf("second identical submission was not served from cache (job %s, state %s)", second.ID, second.State)
	}
	if second.ID == first.ID {
		return fmt.Errorf("cache hit reused the first job id %s; every submission should get its own record", first.ID)
	}
	text2, err := fetchBody(ctx, base+"/api/v1/jobs/"+second.ID+"/result")
	if err != nil {
		return err
	}
	if !bytes.Equal(text1, text2) {
		return fmt.Errorf("cached tables differ from the original run (%d vs %d bytes)", len(text1), len(text2))
	}
	return nil
}

// submitStatus is the slice of the submit response the selfcheck needs.
type submitStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
}

func submitJob(ctx context.Context, base string, body []byte) (submitStatus, error) {
	var st submitStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, fmt.Errorf("submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		blob, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(blob))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("submit: decoding response: %w", err)
	}
	return st, nil
}

func waitDone(ctx context.Context, base, id string) error {
	var st submitStatus
	blob, err := fetchBody(ctx, base+"/api/v1/jobs/"+id+"/wait?timeout=110s")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("wait: decoding status: %w", err)
	}
	if st.State != "done" {
		return fmt.Errorf("job %s finished in state %q, want done", id, st.State)
	}
	return nil
}

func fetchBody(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(blob))
	}
	return blob, nil
}
