// Command sccsimd is the simulation-as-a-service daemon: it serves the
// experiment harness over an HTTP/JSON job API (internal/serve).
//
// Usage:
//
//	sccsimd [-addr 127.0.0.1:8077] [-workers N] [-queue 64]
//	        [-cachemb 1024] [-resultmb 256] [-deadline 15m]
//	sccsimd -selfcheck
//	sccsimd -telemetrycheck
//
// Clients POST job configurations to /api/v1/jobs, poll or stream
// progress, and fetch rendered tables when done. Determinism makes every
// result content-addressable: resubmitting an identical job is served
// bit-identically from the result cache without re-running, and
// duplicate submissions in flight coalesce onto one execution. See
// DESIGN.md section 10 and the README's "Serving" section for the API.
//
// -selfcheck starts an in-process daemon on a loopback port, runs a tiny
// job twice over real HTTP, asserts the second submission is a cache hit
// with byte-identical tables, and exits 0/1. It is the smoke test wired
// into `make serve-smoke`.
//
// -telemetrycheck is the telemetry smoke (wired into `make trace-smoke`):
// it runs a tiny job through a loopback daemon and validates the
// Prometheus exposition on /metrics and the Chrome trace-event JSON on
// /jobs/{id}/trace, then wedges a job with an injected deadlock fault
// and asserts its failure payload carries a non-empty flight-recorder
// tail ending at the wedged job's terminal transition.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr           = flag.String("addr", "127.0.0.1:8077", "listen address for the HTTP API")
		workers        = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 64, "accepted-but-unstarted job bound; beyond it submissions get 503")
		cacheMB        = flag.Int64("cachemb", 1024, "shared generated-matrix cache budget in MiB")
		resultMB       = flag.Int64("resultmb", 256, "content-addressed result cache budget in MiB")
		deadline       = flag.Duration("deadline", 15*time.Minute, "default per-job execution deadline (jobs may set their own)")
		progress       = flag.Bool("progress", false, "print a periodic engine-metrics heartbeat to stderr")
		selfcheck      = flag.Bool("selfcheck", false, "start on a loopback port, run a tiny job twice, assert the second is a cache hit, exit")
		telemetrycheck = flag.Bool("telemetrycheck", false, "start on a loopback port, validate /metrics + job trace, wedge a job and assert its flight recorder, exit")
	)
	flag.Parse()

	cfg := serve.ServerConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		MatrixCacheBytes: *cacheMB << 20,
		ResultStoreBytes: *resultMB << 20,
	}

	if *selfcheck {
		if err := runSelfcheck(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sccsimd: selfcheck FAILED: %v\n", err)
			return 1
		}
		fmt.Println("sccsimd: selfcheck ok (second submission served from cache, bytes identical)")
		return 0
	}
	if *telemetrycheck {
		if err := runTelemetrycheck(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sccsimd: telemetrycheck FAILED: %v\n", err)
			return 1
		}
		fmt.Println("sccsimd: telemetrycheck ok (prometheus lints, trace lints, wedged job carried its flight tail)")
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reporter *obs.Reporter
	if *progress {
		reporter = obs.NewReporter(obs.Default, os.Stderr, 5*time.Second)
		reporter.Start()
		defer reporter.Stop()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsimd: listen %s: %v\n", *addr, err)
		return 1
	}
	nworkers := cfg.Workers
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "sccsimd: serving on http://%s (workers %d, queue %d)\n",
		l.Addr(), nworkers, cfg.QueueDepth)

	s := serve.NewServer(cfg)
	if err := s.Run(ctx, l); err != nil {
		fmt.Fprintf(os.Stderr, "sccsimd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "sccsimd: shut down")
	return 0
}

// selfcheckPool fans the in-process daemon and its client out without
// bare goroutines (the repo-wide sccvet rule).
var selfcheckPool = obs.Default.Pool("sccsimd.selfcheck")

// runSelfcheck is the end-to-end smoke: a real daemon on a loopback
// port, a real HTTP client, a tiny deterministic job run twice. The
// second submission must be a cache hit and the fetched tables must be
// byte-identical to the first run's.
func runSelfcheck(cfg serve.ServerConfig) error {
	return runLoopback(cfg, selfcheckClient)
}

// runLoopback starts an in-process daemon on a loopback port and drives
// client against it over real HTTP, shutting the daemon down when the
// client returns.
func runLoopback(cfg serve.ServerConfig, client func(ctx context.Context, base string) error) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	s := serve.NewServer(cfg)
	var clientErr error
	selfcheckPool.ForEach(2, 2, func(i int) {
		if i == 0 {
			s.Run(ctx, l)
			return
		}
		defer cancel() // client done (or failed): shut the daemon down
		clientErr = client(ctx, base)
	})
	return clientErr
}

// runTelemetrycheck drives the telemetry smoke end to end: a healthy
// loopback daemon whose scrape and trace surfaces must lint clean, then
// a fault-armed daemon proving a deadlocked job arrives with its flight
// recorder attached.
func runTelemetrycheck(cfg serve.ServerConfig) error {
	if err := runLoopback(cfg, telemetryClient); err != nil {
		return fmt.Errorf("healthy daemon: %w", err)
	}
	wcfg := cfg
	// Wedge cell 0 of every matrix: the first cell the sweep touches
	// runs a two-rank communication program whose rank 1 hangs, so the
	// job fails with a genuine watchdog DeadlockError.
	wcfg.Fault = &fault.Plan{WedgeCell: &fault.Cell{Index: 0}}
	if err := runLoopback(wcfg, wedgeClient); err != nil {
		return fmt.Errorf("wedged daemon: %w", err)
	}
	return nil
}

// telemetryClient validates the healthy-path telemetry: a tiny job runs
// to done, /metrics lints as Prometheus text with a histogram ladder,
// the job's trace lints as Chrome trace-event JSON carrying the
// lifecycle track, and the done job ships no flight tail.
func telemetryClient(ctx context.Context, base string) error {
	st, err := submitJob(ctx, base, []byte(`{"experiment": "fig3", "scale": 0.05, "stride": 16}`))
	if err != nil {
		return err
	}
	if err := waitDone(ctx, base, st.ID); err != nil {
		return err
	}

	prom, err := fetchBody(ctx, base+"/metrics")
	if err != nil {
		return err
	}
	if err := obs.LintPrometheus(prom, nil); err != nil {
		return fmt.Errorf("/metrics failed the prometheus lint: %w", err)
	}
	if !bytes.Contains(prom, []byte("_bucket{le=")) {
		return fmt.Errorf("/metrics carries no histogram bucket ladder")
	}

	trace, err := fetchBody(ctx, base+"/api/v1/jobs/"+st.ID+"/trace")
	if err != nil {
		return err
	}
	if err := obs.LintTrace(trace); err != nil {
		return fmt.Errorf("job trace failed the trace lint: %w", err)
	}
	tracks, err := obs.TraceTrackNames(trace)
	if err != nil {
		return fmt.Errorf("job trace: %w", err)
	}
	var sawLifecycle bool
	for _, t := range tracks {
		if t == "serve.job" {
			sawLifecycle = true
		}
	}
	if !sawLifecycle {
		return fmt.Errorf("job trace misses the serve.job lifecycle track (tracks: %s)", strings.Join(tracks, ", "))
	}

	blob, err := fetchBody(ctx, base+"/api/v1/jobs/"+st.ID)
	if err != nil {
		return err
	}
	var status struct {
		Flight *obs.FlightSnapshot `json:"flight"`
	}
	if err := json.Unmarshal(blob, &status); err != nil {
		return fmt.Errorf("decoding job status: %w", err)
	}
	if status.Flight != nil {
		return fmt.Errorf("done job %s shipped a flight tail; recorders are post-mortem only", st.ID)
	}
	return nil
}

// wedgeClient proves the post-mortem path: under a WedgeCell fault the
// job must fail with a watchdog DeadlockError and its status payload
// must carry a non-empty flight tail whose events include the deadlock
// verdict naming the wedged rank and end at the terminal transition.
func wedgeClient(ctx context.Context, base string) error {
	job := []byte(`{"experiment": "fig3", "scale": 0.05, "stride": 16, "max_matrices": 1, "fail_fast": true}`)
	st, err := submitJob(ctx, base, job)
	if err != nil {
		return err
	}
	blob, err := fetchBody(ctx, base+"/api/v1/jobs/"+st.ID+"/wait?timeout=110s")
	if err != nil {
		return err
	}
	var status struct {
		State  string              `json:"state"`
		Error  string              `json:"error"`
		Flight *obs.FlightSnapshot `json:"flight"`
	}
	if err := json.Unmarshal(blob, &status); err != nil {
		return fmt.Errorf("decoding job status: %w", err)
	}
	if status.State != "failed" {
		return fmt.Errorf("wedged job %s finished %q, want failed", st.ID, status.State)
	}
	if !strings.Contains(status.Error, "deadlock") {
		return fmt.Errorf("wedged job's error is not a deadlock: %q", status.Error)
	}
	if status.Flight == nil || len(status.Flight.Events) == 0 {
		return fmt.Errorf("wedged job %s carries no flight-recorder tail", st.ID)
	}
	events := status.Flight.Events
	if last := events[len(events)-1]; last.Kind != "state" || last.Name != "failed" {
		return fmt.Errorf("flight tail ends at %s/%s, want the failed state transition", last.Kind, last.Name)
	}
	var sawVerdict bool
	for _, e := range events {
		if e.Kind == "deadlock" && strings.Contains(e.Detail, "rank") {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		return fmt.Errorf("flight tail of %s has no deadlock verdict naming the wedged rank", st.ID)
	}

	fb, err := fetchBody(ctx, base+"/debug/flight")
	if err != nil {
		return err
	}
	var wrecks []struct {
		ID     string              `json:"id"`
		Flight *obs.FlightSnapshot `json:"flight"`
	}
	if err := json.Unmarshal(fb, &wrecks); err != nil {
		return fmt.Errorf("decoding /debug/flight: %w", err)
	}
	for _, w := range wrecks {
		if w.ID == st.ID && w.Flight != nil && len(w.Flight.Events) > 0 {
			return nil
		}
	}
	return fmt.Errorf("/debug/flight does not list wedged job %s", st.ID)
}

// selfcheckClient drives the submit -> wait -> fetch -> resubmit flow.
func selfcheckClient(ctx context.Context, base string) error {
	// fig3 at 5% scale with a wide stride is the cheapest full pipeline:
	// two generated matrices, a few seconds of simulation.
	job := []byte(`{"experiment": "fig3", "scale": 0.05, "stride": 16}`)

	first, err := submitJob(ctx, base, job)
	if err != nil {
		return err
	}
	if first.CacheHit {
		return fmt.Errorf("first submission reported a cache hit on a fresh daemon")
	}
	if err := waitDone(ctx, base, first.ID); err != nil {
		return err
	}
	text1, err := fetchBody(ctx, base+"/api/v1/jobs/"+first.ID+"/result")
	if err != nil {
		return err
	}
	if len(text1) == 0 {
		return fmt.Errorf("first run produced empty tables")
	}

	second, err := submitJob(ctx, base, job)
	if err != nil {
		return err
	}
	if !second.CacheHit {
		return fmt.Errorf("second identical submission was not served from cache (job %s, state %s)", second.ID, second.State)
	}
	if second.ID == first.ID {
		return fmt.Errorf("cache hit reused the first job id %s; every submission should get its own record", first.ID)
	}
	text2, err := fetchBody(ctx, base+"/api/v1/jobs/"+second.ID+"/result")
	if err != nil {
		return err
	}
	if !bytes.Equal(text1, text2) {
		return fmt.Errorf("cached tables differ from the original run (%d vs %d bytes)", len(text1), len(text2))
	}
	return nil
}

// submitStatus is the slice of the submit response the selfcheck needs.
type submitStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
}

func submitJob(ctx context.Context, base string, body []byte) (submitStatus, error) {
	var st submitStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, fmt.Errorf("submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		blob, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(blob))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("submit: decoding response: %w", err)
	}
	return st, nil
}

func waitDone(ctx context.Context, base, id string) error {
	var st submitStatus
	blob, err := fetchBody(ctx, base+"/api/v1/jobs/"+id+"/wait?timeout=110s")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("wait: decoding status: %w", err)
	}
	if st.State != "done" {
		return fmt.Errorf("job %s finished in state %q, want done", id, st.State)
	}
	return nil
}

func fetchBody(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(blob))
	}
	return blob, nil
}
