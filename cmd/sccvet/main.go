// Command sccvet runs the repo's custom static-analysis suite (see
// internal/lint): five analyzers enforcing the simulator's determinism,
// concurrency and cache-geometry invariants at vet time. It is wired into
// `make check`, so the tree must stay sccvet-clean.
//
// Usage:
//
//	sccvet [-list] [-run name[,name...]] [packages]
//
// Package patterns are directories relative to the module root; a
// trailing /... analyzes the subtree. With no patterns (or ./...) the
// whole module is analyzed. Exit status is 1 when findings remain after
// //sccvet:allow suppression.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	enabled := map[string]bool{}
	if *runFlag != "" {
		for _, n := range strings.Split(*runFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !contains(lint.AnalyzerNames(), n) {
				fatalf("unknown analyzer %q (use -list)", n)
			}
			enabled[n] = true
		}
	}

	root, module, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader := lint.NewLoader(root, module)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		ps, err := resolve(loader, root, pat)
		if err != nil {
			fatalf("%v", err)
		}
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	conf := lint.DefaultConfig()
	bad := 0
	for _, pkg := range pkgs {
		for _, f := range lint.RunPackage(conf, pkg) {
			if len(enabled) > 0 && !enabled[f.Analyzer] && f.Analyzer != "sccvet" {
				continue
			}
			bad++
			fmt.Println(rel(root, f.String()))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sccvet: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// resolve expands one package pattern against the loader.
func resolve(loader *lint.Loader, root, pat string) ([]*lint.Package, error) {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" || pat == "." {
		return loader.LoadAll("")
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return loader.LoadAll(sub)
	}
	p, err := loader.Load(filepath.FromSlash(pat))
	if err != nil {
		return nil, err
	}
	return []*lint.Package{p}, nil
}

// moduleRoot walks up from the working directory to go.mod and reads the
// module path from it.
func moduleRoot() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			f, err := os.Open(gomod)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				fields := strings.Fields(sc.Text())
				if len(fields) == 2 && fields[0] == "module" {
					return dir, fields[1], nil
				}
			}
			return "", "", fmt.Errorf("sccvet: no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("sccvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// rel shortens absolute file positions to module-relative ones.
func rel(root, s string) string {
	return strings.ReplaceAll(s, root+string(filepath.Separator), "")
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sccvet: "+format+"\n", args...)
	os.Exit(1)
}
