// Command sccvet runs the repo's custom static-analysis suite (see
// internal/lint): ten analyzers enforcing the simulator's determinism,
// concurrency, cache-geometry and service-era invariants at vet time. It
// is wired into `make check`, so the tree must stay sccvet-clean.
//
// Usage:
//
//	sccvet [-list] [-json] [-run name[,name...]] [packages]
//
// Package patterns are directories relative to the module root; a
// trailing /... analyzes the subtree. With no patterns (or ./...) the
// whole module is analyzed. -json emits machine-readable findings
// (schema sccvet-findings/1) on stdout instead of text; `make ci`
// records that output next to the test log. Exit status is 1 when
// findings remain after //sccvet:allow suppression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is one finding in -json output, with the file position
// split out and the path module-relative, so CI tooling can link sites
// without parsing the text format.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: schema-tagged like the obs metrics
// snapshots, findings sorted the same way the text output prints them.
type jsonReport struct {
	Schema   string        `json:"schema"`
	Packages int           `json:"packages"`
	Findings []jsonFinding `json:"findings"`
}

const jsonSchema = "sccvet-findings/1"

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON (schema "+jsonSchema+")")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	var run []string
	if *runFlag != "" {
		for _, n := range strings.Split(*runFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !contains(lint.AnalyzerNames(), n) {
				fatalf("unknown analyzer %q (use -list)", n)
			}
			run = append(run, n)
		}
	}

	root, module, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader := lint.NewLoader(root, module)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		ps, err := resolve(loader, root, pat)
		if err != nil {
			fatalf("%v", err)
		}
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	conf := lint.DefaultConfig()
	conf.Run = run
	var all []lint.Finding
	for _, pkg := range pkgs {
		all = append(all, lint.RunPackage(conf, pkg)...)
	}

	if *jsonFlag {
		rep := jsonReport{Schema: jsonSchema, Packages: len(pkgs), Findings: []jsonFinding{}}
		for _, f := range all {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     rel(root, f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, f := range all {
			fmt.Println(rel(root, f.String()))
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "sccvet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// resolve expands one package pattern against the loader.
func resolve(loader *lint.Loader, root, pat string) ([]*lint.Package, error) {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" || pat == "." {
		return loader.LoadAll("")
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return loader.LoadAll(sub)
	}
	p, err := loader.Load(filepath.FromSlash(pat))
	if err != nil {
		return nil, err
	}
	return []*lint.Package{p}, nil
}

// moduleRoot walks up from the working directory to go.mod and reads the
// module path from it.
func moduleRoot() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			f, err := os.Open(gomod)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				fields := strings.Fields(sc.Text())
				if len(fields) == 2 && fields[0] == "module" {
					return dir, fields[1], nil
				}
			}
			return "", "", fmt.Errorf("sccvet: no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("sccvet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// rel shortens absolute file positions to module-relative ones.
func rel(root, s string) string {
	return strings.ReplaceAll(s, root+string(filepath.Separator), "")
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sccvet: "+format+"\n", args...)
	os.Exit(1)
}
