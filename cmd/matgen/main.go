// Command matgen inspects and exports the paper's 32-matrix testbed.
//
// Usage:
//
//	matgen -list                         # print Table I
//	matgen -name sparsine -stats         # structural statistics
//	matgen -name F1 -scale 0.1 -out f1.mtx   # export as MatrixMarket
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	var (
		list  = flag.Bool("list", false, "print the Table I testbed and exit")
		name  = flag.String("name", "", "testbed matrix to generate")
		scale = flag.Float64("scale", 1.0, "scale factor in (0, 1]")
		out   = flag.String("out", "", "write the matrix as MatrixMarket to this path")
		stat  = flag.Bool("stats", false, "print structural statistics of the generated matrix")
	)
	flag.Parse()

	if *list {
		t := stats.NewTable("Table I - matrix benchmark suite",
			"#", "Matrix", "n", "nnz", "nnz/n", "ws (MB)", "pattern class")
		for _, e := range sparse.Testbed() {
			t.AddRow(e.ID, e.Name, e.N, e.NNZ, e.NNZPerRow(), e.WorkingSetMB(), string(e.Class))
		}
		fmt.Print(t.String())
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "matgen: -name or -list required")
		os.Exit(2)
	}
	e, ok := sparse.TestbedEntryByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "matgen: unknown matrix %q (try -list)\n", *name)
		os.Exit(2)
	}
	a := e.GenerateScaled(*scale)
	if err := a.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "matgen: generated matrix invalid:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: n=%d nnz=%d nnz/n=%.1f ws=%.1f MB (class %s, scale %g)\n",
		a.Name, a.Rows, a.NNZ(), a.NNZPerRow(), a.WorkingSetMB(), e.Class, *scale)

	if *stat {
		st := sparse.ComputeStats(a)
		fmt.Printf("rows: min=%d max=%d std=%.1f empty=%d\n", st.MinRow, st.MaxRow, st.StdRow, st.EmptyRows)
		fmt.Printf("bandwidth=%d avg col span=%.0f near-diagonal fraction=%.2f\n",
			st.Bandwidth, st.AvgColSpan, st.DiagFraction)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sparse.WriteMatrixMarket(f, a); err != nil {
			fmt.Fprintln(os.Stderr, "matgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
