// Command sccsim regenerates the paper's tables and figures on the SCC
// simulator.
//
// Usage:
//
//	sccsim -list
//	sccsim -exp fig5 [-scale 0.25] [-stride 1] [-max 0] [-csv]
//	sccsim -exp all  [-scale 0.25]
//
// -scale 1.0 reproduces the paper's matrix sizes (slow: the full testbed
// holds ~95M nonzeros); the default quarter scale preserves every
// qualitative relationship and finishes in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		expID  = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale  = flag.Float64("scale", 0.25, "testbed scale factor in (0, 1]; 1.0 = paper sizes")
		stride = flag.Int("stride", 1, "keep every stride-th testbed matrix")
		max    = flag.Int("max", 0, "use only the first N selected matrices (0 = all)")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir = flag.String("outdir", "", "also write each experiment's tables to <outdir>/<id>.txt and .csv")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "sccsim: -exp or -list required (try -list)")
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale, Stride: *stride, MaxMatrices: *max}
	var toRun []experiments.Experiment
	if *expID == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sccsim: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s  (scale %g, %v)\n\n", e.ID, e.Title, *scale, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		if *outDir != "" {
			if err := writeTables(*outDir, e.ID, tables); err != nil {
				fmt.Fprintf(os.Stderr, "sccsim: writing %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}

// writeTables persists an experiment's tables as <outdir>/<id>.txt (aligned)
// and <outdir>/<id>.csv (machine-readable, tables separated by blank lines).
func writeTables(dir, id string, tables []*stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var txt, csv strings.Builder
	for _, t := range tables {
		txt.WriteString(t.String())
		txt.WriteByte('\n')
		csv.WriteString(t.CSV())
		csv.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(csv.String()), 0o644)
}
