// Command sccsim regenerates the paper's tables and figures on the SCC
// simulator.
//
// Usage:
//
//	sccsim -list
//	sccsim -exp fig5 [-scale 0.25] [-stride 1] [-max 0] [-csv]
//	sccsim -exp all  [-scale 0.25]
//	sccsim -exp bench [-benchexp fig6,fig8,ablation-l2geom] [-json]
//	sccsim -exp rcce-scaling [-engine goroutine|des] [-mesh 32x32x1]
//	sccsim -exp bench-des [-mesh 16x16x2] [-json]
//
// -scale 1.0 reproduces the paper's matrix sizes (slow: the full testbed
// holds ~95M nonzeros); the default quarter scale preserves every
// qualitative relationship and finishes in minutes.
//
// The engine is host-parallel and deterministic: -parallel 1 forces the
// serial reference path with bit-identical output. -pricing selects the
// cache-pricing backend (exact per-access walks, the reuse-distance
// analytic fast path, or auto, which goes analytic only where provably
// bit-identical; see internal/sim/pricing.go). -exp bench times the
// serial, parallel-exact and analytic engines on each listed experiment
// and writes a machine-readable BENCH_<exp>.json perf record per id.
// -cpuprofile/-memprofile capture pprof profiles of whatever the
// invocation runs.
//
// Executable-runtime experiments (rcce-scaling) run the real RCCE
// message-passing program: -engine selects the goroutine backend or the
// single-threaded virtual-time DES scheduler (bit-identical tables either
// way), and -mesh lifts the 48-core cap to arbitrary XxYxC geometries.
// -exp bench-des times the sweep on both engines under injected message
// latency and writes BENCH_des.json (the virtual-time speedup record).
//
// Robustness: SIGINT/SIGTERM and the -deadline flag cancel the run's
// context, which stops the engine at its next matrix/cell/pass boundary;
// profiles and the -metrics snapshot are still flushed on the way out. A
// failing (matrix, cell) unit is isolated into an error row appended to
// the experiment's tables; -failfast restores abort-at-first-error.
//
// Observability (internal/obs): -metrics out.json writes a schema-stable
// JSON snapshot of every engine metric (per-UE walk timings, worker-pool
// occupancy, sweep sharing, matrix-cache effectiveness, per-controller
// contention) plus the run's span tree; -metrics-prom out.prom writes
// the same registry in Prometheus text exposition format; -trace
// out.json writes a Chrome trace-event JSON of the run's span tree and
// flight-recorder tracks (load at ui.perfetto.dev or chrome://tracing);
// -progress prints a periodic heartbeat of the counters to stderr. All
// are write-only taps: output tables are bit-identical with or without
// them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	// Every exit funnels through run's return code so the deferred
	// cleanups (CPU/heap profile flush, metrics snapshot, heartbeat stop)
	// run on error paths too - os.Exit anywhere deeper would lose them.
	os.Exit(run())
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		expID      = flag.String("exp", "", "experiment id to run, \"all\", or \"bench\"")
		scale      = flag.Float64("scale", 0.25, "testbed scale factor in (0, 1]; 1.0 = paper sizes")
		stride     = flag.Int("stride", 1, "keep every stride-th testbed matrix")
		max        = flag.Int("max", 0, "use only the first N selected matrices (0 = all)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir     = flag.String("outdir", "", "also write each experiment's tables to <outdir>/<id>.txt and .csv")
		parallel   = flag.Int("parallel", 0, "host worker pool size: 0 = GOMAXPROCS, 1 = serial reference engine")
		sequential = flag.Bool("sequential", false, "seed-equivalent engine: no pools, no shared sweep walks (determinism oracle)")
		cacheMB    = flag.Int64("cachemb", experiments.DefaultMatrixCacheBytes>>20, "generated-matrix cache budget in MiB (0 disables memoisation)")
		deadline   = flag.Duration("deadline", 0, "cancel the whole run after this duration (0 = none)")
		failFast   = flag.Bool("failfast", false, "abort a sweep at the first failing cell instead of isolating it into an error row")
		pricing    = flag.String("pricing", "auto", "cache-pricing backend: exact (per-access walk), analytic (reuse-distance fast path), auto (analytic only where provably identical)")
		engine     = flag.String("engine", "goroutine", "RCCE backend for executable-runtime experiments: goroutine (the semantic oracle) or des (single-threaded virtual-time scheduler); tables are bit-identical either way")
		mesh       = flag.String("mesh", "", "chip geometry for executable-runtime experiments as XxYxC tiles (e.g. 32x32x1 = 1024 cores); empty = the real 6x4x2 SCC")
		benchExp   = flag.String("benchexp", "fig9", "comma-separated experiment ids the bench harness times (with -exp bench), e.g. fig6,fig8,ablation-l2geom")
		jsonOut    = flag.Bool("json", false, "with -exp bench: also print the perf record as JSON on stdout")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		metricsOut = flag.String("metrics", "", "write a JSON snapshot of the engine metrics (internal/obs) to this file on exit")
		promOut    = flag.String("metrics-prom", "", "write the engine metrics in Prometheus text exposition format to this file on exit")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run (load at ui.perfetto.dev) to this file on exit")
		progress   = flag.Bool("progress", false, "print a periodic engine-metrics heartbeat to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "sccsim: -exp or -list required (try -list)")
		return 2
	}
	if err := validateFlags(*scale, *stride, *max, *parallel, *cacheMB); err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		return 2
	}

	// code only ever ratchets up: a later cleanup failure cannot mask an
	// earlier error, and a cleanup error turns a "successful" run red.
	code := 0
	errf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sccsim: "+format+"\n", args...)
		if code < 1 {
			code = 1
		}
	}

	// SIGINT/SIGTERM and -deadline cancel the run context; the engine
	// stops at its next matrix/cell/pass boundary and the cleanups below
	// still flush profiles and metrics.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			errf("creating %s: %v", *cpuProfile, err)
			return code
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			errf("starting CPU profile: %v", err)
			return code
		}
		cpuFile = f
	}

	var reporter *obs.Reporter
	if *progress {
		reporter = obs.NewReporter(obs.Default, os.Stderr, time.Second)
		reporter.Start()
	}
	// The flight recorder only arms under -trace: the ring is generous
	// (the CLI has no post-mortem size pressure, it wants the whole run)
	// and rides the context so pool workers, the cache and the rcce
	// bridge attribute their events to this run.
	var flight *obs.Recorder
	if *traceOut != "" {
		flight = obs.NewRecorder(traceRingEvents)
		ctx = obs.WithRecorder(ctx, flight)
	}
	runSpan := obs.Default.StartSpan("run")

	// The cleanups run on every exit path from here on, success or not,
	// and surface their own failures: a truncated profile or an unwritten
	// metrics snapshot is an error, not a silent shrug.
	defer func() {
		runSpan.End()
		if reporter != nil {
			reporter.Stop()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errf("closing CPU profile %s: %v", *cpuProfile, err)
			}
		}
		if *memProfile != "" {
			if err := writeHeapProfile(*memProfile); err != nil {
				errf("%v", err)
			}
		}
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut); err != nil {
				errf("%v", err)
			} else {
				fmt.Fprintf(os.Stderr, "sccsim: metrics written to %s\n", *metricsOut)
			}
		}
		if *promOut != "" {
			if err := writeMetricsProm(*promOut); err != nil {
				errf("%v", err)
			} else {
				fmt.Fprintf(os.Stderr, "sccsim: prometheus metrics written to %s\n", *promOut)
			}
		}
		if *traceOut != "" {
			// runSpan is already ended above, so the trace's span slices
			// all carry real durations.
			if err := writeTrace(*traceOut, runSpan, flight); err != nil {
				errf("%v", err)
			} else {
				fmt.Fprintf(os.Stderr, "sccsim: trace written to %s (load at ui.perfetto.dev)\n", *traceOut)
			}
		}
	}()

	pricingMode, err := sim.ParsePricing(*pricing)
	if err != nil {
		errf("%v", err)
		return code
	}
	backend, err := rcce.ParseBackend(*engine)
	if err != nil {
		errf("%v", err)
		return code
	}
	geom, err := scc.ParseGeometry(*mesh)
	if err != nil {
		errf("%v", err)
		return code
	}
	cache := sparse.NewMatrixCache(*cacheMB << 20)
	if flight != nil {
		cache.SetRecorder(flight)
	}
	cfg := experiments.Config{
		Scale:       *scale,
		Stride:      *stride,
		MaxMatrices: *max,
		Parallelism: *parallel,
		Sequential:  *sequential,
		MatrixCache: cache,
		Ctx:         ctx,
		FailFast:    *failFast,
		Pricing:     pricingMode,
		Engine:      backend,
		Mesh:        geom,
	}

	if *expID == "bench-des" {
		if err := runBenchDES(cfg, *outDir, *jsonOut); err != nil {
			errf("bench-des: %v", err)
		}
		return code
	}
	if *expID == "bench" {
		for _, id := range strings.Split(*benchExp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if err := runBench(cfg, id, *outDir, *jsonOut); err != nil {
				errf("bench %s: %v", id, err)
				return code
			}
		}
		return code
	}

	var toRun []experiments.Experiment
	if *expID == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sccsim: unknown experiment %q (try -list)\n", *expID)
			code = 2
			return code
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		ecfg := cfg
		ecfg.Span = runSpan.StartChild("exp:" + e.ID)
		tables, err := e.Execute(ecfg)
		ecfg.Span.End()
		if err != nil {
			errf("%s: %v", e.ID, err)
			return code
		}
		fmt.Printf("== %s: %s  (scale %g, %v)\n\n", e.ID, e.Title, *scale, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		if *outDir != "" {
			if err := writeTables(*outDir, e.ID, tables); err != nil {
				errf("writing %s: %v", e.ID, err)
				return code
			}
		}
	}
	return code
}

// validateFlags rejects out-of-range engine knobs at startup with a clear
// message, instead of letting them surface as undefined behavior deep in
// partitioning or matrix generation (a negative -parallel used to reach
// the pool, -scale 0 the generator, -stride 0 the subset walk).
func validateFlags(scale float64, stride, max, parallel int, cacheMB int64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("-scale %v outside (0, 1]: 1.0 is the paper's size, smaller shrinks the testbed", scale)
	}
	if stride < 1 {
		return fmt.Errorf("-stride %d invalid: need >= 1 (1 keeps every testbed matrix)", stride)
	}
	if max < 0 {
		return fmt.Errorf("-max %d invalid: need >= 0 (0 keeps all selected matrices)", max)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel %d invalid: need >= 0 (0 = GOMAXPROCS, 1 = serial reference engine)", parallel)
	}
	if cacheMB < 0 {
		return fmt.Errorf("-cachemb %d invalid: need >= 0 (0 disables memoisation)", cacheMB)
	}
	return nil
}

// writeHeapProfile captures a post-GC heap profile, closing the file and
// reporting write errors instead of leaving a silently truncated profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing heap profile %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("closing heap profile %s: %w", path, cerr)
	}
	return nil
}

// writeMetrics persists the obs snapshot.
func writeMetrics(path string) error {
	blob, err := obs.Default.SnapshotJSON()
	if err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// traceRingEvents sizes the -trace flight recorder. Unlike the daemon's
// per-job post-mortem ring, the CLI trace wants every event of the one
// run it instruments, so the ring is sized to effectively never wrap.
const traceRingEvents = 65536

// writeMetricsProm persists the obs registry in Prometheus text format.
func writeMetricsProm(path string) error {
	blob, err := obs.Default.PrometheusText()
	if err != nil {
		return fmt.Errorf("prometheus exposition: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// writeTrace persists the run's Chrome trace-event JSON: the span tree
// under runSpan plus every flight-recorder track (pool workers, cache,
// rcce).
func writeTrace(path string, runSpan *obs.Span, rec *obs.Recorder) error {
	blob, err := obs.TraceJSON([]*obs.SpanSnapshot{runSpan.Snapshot()}, rec.Snapshot())
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// runBench times the serial vs parallel engine on one experiment and
// persists the BENCH_<exp>.json perf record (in outDir when given, else
// the working directory).
func runBench(cfg experiments.Config, id, outDir string, jsonOut bool) error {
	rec, err := experiments.Bench(cfg, id)
	if err != nil {
		return err
	}
	fmt.Printf("== bench %s (scale %g, %d matrices, GOMAXPROCS %d)\n",
		rec.Experiment, rec.Scale, rec.Matrices, rec.GoMaxProcs)
	fmt.Printf("serial engine:   %8.2fs\n", rec.SerialSec)
	fmt.Printf("parallel engine: %8.2fs  (speedup %.2fx)\n", rec.ParallelSec, rec.Speedup)
	fmt.Printf("analytic pricing:%8.2fs  (speedup %.2fx vs parallel; %d cells analytic, %d exact; profiles %d built, %d reused; output identical: %t)\n",
		rec.AnalyticSec, rec.AnalyticSpeedup, rec.CellsAnalytic, rec.CellsExact,
		rec.ProfilesBuilt, rec.ProfilesReused, rec.OutputIdentical)
	fmt.Printf("throughput: %.1f simulated MFLOP/s, %.2f matrices/s (cache: %d hits, %d misses, %d evictions)\n",
		1e3*rec.SimulatedGFLOPS, rec.MatricesPerSec, rec.CacheHits, rec.CacheMisses, rec.CacheEvictions)

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if jsonOut {
		os.Stdout.Write(blob)
	}
	dir := outDir
	if dir == "" {
		dir = "."
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf record written to %s\n", path)
	return nil
}

// runBenchDES times the rcce-scaling sweep on the goroutine vs DES engine
// under injected per-message latency and persists BENCH_des.json (in
// outDir when given, else the working directory).
func runBenchDES(cfg experiments.Config, outDir string, jsonOut bool) error {
	rec, err := experiments.BenchDES(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("== bench-des %s (mesh %s, %v injected per gather message, GOMAXPROCS %d)\n",
		rec.Experiment, rec.Mesh, time.Duration(rec.InjectedDelaySec*float64(time.Second)), rec.GoMaxProcs)
	fmt.Printf("goroutine engine: %8.2fs  (pays the injected latency in wall clock)\n", rec.GoroutineSec)
	fmt.Printf("DES engine:       %8.2fs  (speedup %.2fx: virtual time is free; output identical: %t)\n",
		rec.DESSec, rec.Speedup, rec.OutputIdentical)
	blob, err := rec.JSON()
	if err != nil {
		return err
	}
	if jsonOut {
		os.Stdout.Write(blob)
	}
	dir := outDir
	if dir == "" {
		dir = "."
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_des.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf record written to %s\n", path)
	return nil
}

// writeTables persists an experiment's tables as <outdir>/<id>.txt (aligned)
// and <outdir>/<id>.csv (machine-readable, tables separated by blank lines).
func writeTables(dir, id string, tables []*stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var txt, csv strings.Builder
	for _, t := range tables {
		txt.WriteString(t.String())
		txt.WriteByte('\n')
		csv.WriteString(t.CSV())
		csv.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(csv.String()), 0o644)
}
