// Command sccsim regenerates the paper's tables and figures on the SCC
// simulator.
//
// Usage:
//
//	sccsim -list
//	sccsim -exp fig5 [-scale 0.25] [-stride 1] [-max 0] [-csv]
//	sccsim -exp all  [-scale 0.25]
//	sccsim -exp bench [-benchexp fig9] [-json]
//
// -scale 1.0 reproduces the paper's matrix sizes (slow: the full testbed
// holds ~95M nonzeros); the default quarter scale preserves every
// qualitative relationship and finishes in minutes.
//
// The engine is host-parallel and deterministic: -parallel 1 forces the
// serial reference path with bit-identical output. -exp bench times the
// serial and parallel engines on one experiment and writes a
// machine-readable BENCH_<exp>.json perf record. -cpuprofile/-memprofile
// capture pprof profiles of whatever the invocation runs.
//
// Observability (internal/obs): -metrics out.json writes a schema-stable
// JSON snapshot of every engine metric (per-UE walk timings, worker-pool
// occupancy, sweep sharing, matrix-cache effectiveness, per-controller
// contention) plus the run's span tree; -progress prints a periodic
// heartbeat of the counters to stderr. Both are write-only taps: output
// tables are bit-identical with or without them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		expID      = flag.String("exp", "", "experiment id to run, \"all\", or \"bench\"")
		scale      = flag.Float64("scale", 0.25, "testbed scale factor in (0, 1]; 1.0 = paper sizes")
		stride     = flag.Int("stride", 1, "keep every stride-th testbed matrix")
		max        = flag.Int("max", 0, "use only the first N selected matrices (0 = all)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir     = flag.String("outdir", "", "also write each experiment's tables to <outdir>/<id>.txt and .csv")
		parallel   = flag.Int("parallel", 0, "host worker pool size: 0 = GOMAXPROCS, 1 = serial reference engine")
		sequential = flag.Bool("sequential", false, "seed-equivalent engine: no pools, no shared sweep walks (determinism oracle)")
		cacheMB    = flag.Int64("cachemb", experiments.DefaultMatrixCacheBytes>>20, "generated-matrix cache budget in MiB (0 disables memoisation)")
		benchExp   = flag.String("benchexp", "fig9", "experiment the bench harness times (with -exp bench)")
		jsonOut    = flag.Bool("json", false, "with -exp bench: also print the perf record as JSON on stdout")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		metricsOut = flag.String("metrics", "", "write a JSON snapshot of the engine metrics (internal/obs) to this file on exit")
		progress   = flag.Bool("progress", false, "print a periodic engine-metrics heartbeat to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "sccsim: -exp or -list required (try -list)")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("creating %s: %v", *cpuProfile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("creating %s: %v", *memProfile, err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing heap profile: %v", err)
		}
	}()

	cfg := experiments.Config{
		Scale:       *scale,
		Stride:      *stride,
		MaxMatrices: *max,
		Parallelism: *parallel,
		Sequential:  *sequential,
		MatrixCache: sparse.NewMatrixCache(*cacheMB << 20),
	}

	var reporter *obs.Reporter
	if *progress {
		reporter = obs.NewReporter(obs.Default, os.Stderr, time.Second)
		reporter.Start()
	}
	runSpan := obs.Default.StartSpan("run")
	// finishObs closes the run span, flushes the last heartbeat and
	// persists the -metrics snapshot; called on every successful exit
	// path (fatalf exits without it, like the pprof defers).
	finishObs := func() {
		runSpan.End()
		if reporter != nil {
			reporter.Stop()
		}
		if *metricsOut == "" {
			return
		}
		blob, err := obs.Default.SnapshotJSON()
		if err != nil {
			fatalf("metrics snapshot: %v", err)
		}
		if err := os.WriteFile(*metricsOut, blob, 0o644); err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
		fmt.Fprintf(os.Stderr, "sccsim: metrics written to %s\n", *metricsOut)
	}

	if *expID == "bench" {
		runBench(cfg, *benchExp, *outDir, *jsonOut)
		finishObs()
		return
	}

	var toRun []experiments.Experiment
	if *expID == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sccsim: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		ecfg := cfg
		ecfg.Span = runSpan.StartChild("exp:" + e.ID)
		tables, err := e.Run(ecfg)
		ecfg.Span.End()
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("== %s: %s  (scale %g, %v)\n\n", e.ID, e.Title, *scale, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		if *outDir != "" {
			if err := writeTables(*outDir, e.ID, tables); err != nil {
				fatalf("writing %s: %v", e.ID, err)
			}
		}
	}
	finishObs()
}

// runBench times the serial vs parallel engine on one experiment and
// persists the BENCH_<exp>.json perf record (in outDir when given, else
// the working directory).
func runBench(cfg experiments.Config, id, outDir string, jsonOut bool) {
	rec, err := experiments.Bench(cfg, id)
	if err != nil {
		fatalf("bench: %v", err)
	}
	fmt.Printf("== bench %s (scale %g, %d matrices, GOMAXPROCS %d)\n",
		rec.Experiment, rec.Scale, rec.Matrices, rec.GoMaxProcs)
	fmt.Printf("serial engine:   %8.2fs\n", rec.SerialSec)
	fmt.Printf("parallel engine: %8.2fs  (speedup %.2fx)\n", rec.ParallelSec, rec.Speedup)
	fmt.Printf("throughput: %.1f simulated MFLOP/s, %.2f matrices/s (cache: %d hits, %d misses, %d evictions)\n",
		1e3*rec.SimulatedGFLOPS, rec.MatricesPerSec, rec.CacheHits, rec.CacheMisses, rec.CacheEvictions)

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatalf("bench: %v", err)
	}
	blob = append(blob, '\n')
	if jsonOut {
		os.Stdout.Write(blob)
	}
	dir := outDir
	if dir == "" {
		dir = "."
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("bench: %v", err)
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("bench: %v", err)
	}
	fmt.Printf("perf record written to %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sccsim: "+format+"\n", args...)
	os.Exit(1)
}

// writeTables persists an experiment's tables as <outdir>/<id>.txt (aligned)
// and <outdir>/<id>.csv (machine-readable, tables separated by blank lines).
func writeTables(dir, id string, tables []*stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var txt, csv strings.Builder
	for _, t := range tables {
		txt.WriteString(t.String())
		txt.WriteByte('\n')
		csv.WriteString(t.CSV())
		csv.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(csv.String()), 0o644)
}
