package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the startup validation: out-of-range engine knobs
// must be rejected with a message naming the flag, not passed through to
// the engine.
func TestValidateFlags(t *testing.T) {
	ok := func(scale float64, stride, max, parallel int, cacheMB int64) {
		t.Helper()
		if err := validateFlags(scale, stride, max, parallel, cacheMB); err != nil {
			t.Errorf("validateFlags(%v, %d, %d, %d, %d) rejected a valid combination: %v",
				scale, stride, max, parallel, cacheMB, err)
		}
	}
	bad := func(flag string, scale float64, stride, max, parallel int, cacheMB int64) {
		t.Helper()
		err := validateFlags(scale, stride, max, parallel, cacheMB)
		if err == nil {
			t.Errorf("validateFlags(%v, %d, %d, %d, %d) accepted an invalid combination",
				scale, stride, max, parallel, cacheMB)
			return
		}
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("error %q does not name the offending flag %s", err, flag)
		}
	}

	ok(0.25, 1, 0, 0, 1024)
	ok(1.0, 16, 3, 48, 0)
	ok(0.001, 1, 0, 1, 1)

	bad("-scale", 0, 1, 0, 0, 1024)
	bad("-scale", -0.5, 1, 0, 0, 1024)
	bad("-scale", 1.5, 1, 0, 0, 1024)
	bad("-stride", 0.25, 0, 0, 0, 1024)
	bad("-stride", 0.25, -2, 0, 0, 1024)
	bad("-max", 0.25, 1, -1, 0, 1024)
	bad("-parallel", 0.25, 1, 0, -1, 1024)
	bad("-cachemb", 0.25, 1, 0, 0, -1)
}
