// Command spmvrun simulates a single SpMV on the SCC and prints its timing
// breakdown - the "one experiment at a time" companion to sccsim.
//
// Usage:
//
//	spmvrun -matrix F1 -scale 0.1 -cores 24 -mapping distance -config conf1
//	spmvrun -mm path/to/matrix.mtx -cores 48 -variant noxmiss -nol2
//	spmvrun -matrix sparsine -cores 8 -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
)

func main() {
	var (
		matrix  = flag.String("matrix", "F1", "testbed matrix name (see matgen -list)")
		mmPath  = flag.String("mm", "", "load a MatrixMarket file instead of a testbed matrix")
		scale   = flag.Float64("scale", 0.25, "testbed scale factor in (0, 1]")
		cores   = flag.Int("cores", 48, "number of units of execution (1..48)")
		mapName = flag.String("mapping", "distance", "mapping policy: standard, distance or random")
		cfgName = flag.String("config", "conf0", "clock configuration: conf0, conf1 or conf2")
		variant = flag.String("variant", "standard", "kernel variant: standard or noxmiss")
		noL2    = flag.Bool("nol2", false, "disable the per-core L2 caches")
		cold    = flag.Bool("cold", false, "report the cold-cache pass instead of steady state")
		seed    = flag.Int64("seed", 1, "seed for the random mapping")
		verbose = flag.Bool("verbose", false, "print the per-core breakdown")
		showMap = flag.Bool("showmap", false, "draw the chip floorplan with the rank placement")
	)
	flag.Parse()

	a, err := loadMatrix(*mmPath, *matrix, *scale)
	if err != nil {
		fail(err)
	}

	cc, ok := scc.NamedConfigs()[*cfgName]
	if !ok {
		fail(fmt.Errorf("unknown configuration %q", *cfgName))
	}
	mapping, err := scc.Map(scc.MappingPolicy(mapPolicy(*mapName)), *cores, *seed)
	if err != nil {
		fail(err)
	}
	var v sim.Variant
	switch *variant {
	case "standard":
		v = sim.KernelStandard
	case "noxmiss":
		v = sim.KernelNoXMiss
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}

	m := sim.NewMachine(cc)
	m.WithL2 = !*noL2
	r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping, Variant: v, ColdCache: *cold})
	if err != nil {
		fail(err)
	}

	fmt.Printf("matrix      %s (n=%d, nnz=%d, ws=%.1f MB)\n", a.Name, a.Rows, a.NNZ(), a.WorkingSetMB())
	fmt.Printf("machine     %s, %d cores (%s mapping), L2=%v, kernel=%s\n",
		cc, r.UEs, *mapName, !*noL2, r.Variant)
	fmt.Printf("time        %.3f ms\n", r.TimeSec*1e3)
	fmt.Printf("throughput  %.1f MFLOPS (%.3f GFLOPS)\n", r.MFLOPS, r.GFLOPS)
	fmt.Printf("power       %.1f W  ->  %.1f MFLOPS/W\n", r.PowerWatts, r.MFLOPSPerWatt)
	if *showMap {
		fmt.Println()
		fmt.Print(scc.RenderMapping(mapping))
	}
	if *verbose {
		fmt.Println()
		if err := r.WriteReport(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func loadMatrix(mmPath, name string, scale float64) (*sparse.CSR, error) {
	if mmPath != "" {
		f, err := os.Open(mmPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sparse.ReadMatrixMarket(f)
	}
	e, ok := sparse.TestbedEntryByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown testbed matrix %q (see matgen -list)", name)
	}
	return e.GenerateScaled(scale), nil
}

func mapPolicy(name string) string {
	switch name {
	case "distance":
		return string(scc.MapDistanceReduction)
	case "standard":
		return string(scc.MapStandard)
	case "random":
		return string(scc.MapRandom)
	}
	return name // let scc.Map report the error
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spmvrun:", err)
	os.Exit(1)
}
